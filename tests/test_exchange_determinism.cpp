// Determinism and ordering guarantees of the two-phase exchange protocol
// (sim/engine.hpp), plus the PayloadRef sharing semantics it relies on.
// The interesting failures here are schedule-dependent, so several tests
// repeat runs with deliberate timing jitter; the CI tsan job runs this
// binary under ThreadSanitizer to certify the lock-free delivery path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sim/engine.hpp"

namespace km {
namespace {

std::uint64_t value_of(const Message& m) {
  Reader r(m.payload);
  return r.get_varint();
}

TEST(ExchangeOrder, GroupedByAscendingSourceUnderScheduleJitter) {
  // Every machine sends 3 messages to every peer; receivers must see them
  // grouped by ascending src with send order preserved inside a group,
  // no matter how the threads are scheduled.  Jitter each machine's
  // arrival at the barrier to shake out schedule dependence.
  constexpr std::size_t kMachines = 8;
  for (int trial = 0; trial < 5; ++trial) {
    Engine engine(kMachines,
                  {.bandwidth_bits = 1 << 16,
                   .seed = static_cast<std::uint64_t>(trial + 1)});
    engine.run([&](MachineContext& ctx) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(ctx.rng().below(200)));
      for (std::size_t dst = 0; dst < kMachines; ++dst) {
        if (dst == ctx.id()) continue;
        for (std::uint64_t seq = 0; seq < 3; ++seq) {
          Writer w;
          w.put_varint(seq);
          ctx.send(dst, 1, w);
        }
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(ctx.rng().below(200)));
      const auto in = ctx.exchange();
      ASSERT_EQ(in.size(), 3 * (kMachines - 1));
      for (std::size_t i = 0; i < in.size(); ++i) {
        const std::size_t group = i / 3;
        // Sources ascend, skipping ourselves.
        const std::size_t want_src = group + (group >= ctx.id() ? 1 : 0);
        EXPECT_EQ(in[i].src, want_src) << "position " << i;
        EXPECT_EQ(value_of(in[i]), i % 3) << "send order inside group";
      }
    });
  }
}

TEST(ExchangeOrder, StashedCollectiveLeftoversPreserveOrder) {
  // Messages sent in the same superstep as a collective are stashed and
  // must come back first, in their original delivery order, followed by
  // the next superstep's traffic.
  constexpr std::size_t kMachines = 4;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 9});
  engine.run([&](MachineContext& ctx) {
    for (std::size_t dst = 0; dst < kMachines; ++dst) {
      if (dst == ctx.id()) continue;
      for (std::uint64_t seq = 0; seq < 2; ++seq) {
        Writer w;
        w.put_varint(100 + seq);
        ctx.send(dst, 7, w);
      }
    }
    EXPECT_EQ(ctx.all_reduce_sum(1), kMachines);
    // Second wave, delivered by the exchange below.
    for (std::size_t dst = 0; dst < kMachines; ++dst) {
      if (dst == ctx.id()) continue;
      Writer w;
      w.put_varint(200);
      ctx.send(dst, 8, w);
    }
    const auto in = ctx.exchange();
    ASSERT_EQ(in.size(), 3 * (kMachines - 1));
    // Stash first (two per source, ascending src, send order kept), then
    // the new wave (one per source, ascending src).
    for (std::size_t i = 0; i < 2 * (kMachines - 1); ++i) {
      EXPECT_EQ(in[i].tag, 7u) << "stash must come first, position " << i;
      EXPECT_EQ(value_of(in[i]), 100 + i % 2);
    }
    for (std::size_t i = 2 * (kMachines - 1); i < in.size(); ++i) {
      EXPECT_EQ(in[i].tag, 8u);
      EXPECT_EQ(value_of(in[i]), 200u);
    }
    std::vector<std::uint32_t> stash_srcs, wave_srcs;
    for (const auto& m : in) {
      (m.tag == 7 ? stash_srcs : wave_srcs).push_back(m.src);
    }
    EXPECT_TRUE(std::is_sorted(stash_srcs.begin(), stash_srcs.end()));
    EXPECT_TRUE(std::is_sorted(wave_srcs.begin(), wave_srcs.end()));
  });
}

TEST(ExchangeOrder, BroadcastSharesOneImmutableBuffer) {
  // Zero-copy: all k-1 receivers of a broadcast must observe the very
  // same underlying buffer, and the bytes must equal what was written
  // (no receiver can have scribbled on another's view — payloads are
  // immutable by construction).
  constexpr std::size_t kMachines = 6;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 11});
  std::vector<PayloadRef> seen(kMachines);  // from machine 0's broadcast
  engine.run([&](MachineContext& ctx) {
    Writer w;
    for (int i = 0; i < 64; ++i) w.put_varint(ctx.id() * 64 + i);
    ctx.broadcast(5, w);
    for (auto& msg : ctx.exchange()) {
      if (msg.src == 0) seen[ctx.id()] = msg.payload;
    }
  });
  const PayloadRef& first = seen[1];
  ASSERT_FALSE(first.empty());
  Reader check(first);
  EXPECT_EQ(check.get_varint(), 0u);  // machine 0's first value
  for (std::size_t id = 2; id < kMachines; ++id) {
    EXPECT_TRUE(seen[id].shares_buffer_with(first))
        << "receiver " << id << " got a private copy";
    EXPECT_EQ(seen[id].data(), first.data());
    EXPECT_EQ(seen[id].size(), first.size());
  }
}

TEST(ExchangeOrder, MetricsIdenticalAcrossJitteredRuns) {
  // The accounting must be a pure function of the program, not of the
  // schedule: jittered runs produce bit-identical metrics.
  auto run_once = [](std::uint64_t jitter_seed) {
    Engine engine(6, {.bandwidth_bits = 128, .seed = 42});
    return engine.run([&](MachineContext& ctx) {
      // Timing jitter comes from a seed the engine does not see, so the
      // two runs sleep differently but must account identically.
      Rng jitter(jitter_seed, ctx.id());
      for (int step = 0; step < 4; ++step) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(jitter.below(150)));
        const auto peers = ctx.rng().below(5);
        for (std::uint64_t i = 0; i < peers; ++i) {
          Writer w;
          w.put_varint(step * 100 + i);
          ctx.send((ctx.id() + 1 + i) % 6, 1, w);
        }
        ctx.exchange();
      }
    });
  };
  const auto a = run_once(1);
  const auto b = run_once(2);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.max_link_bits_superstep, b.max_link_bits_superstep);
  EXPECT_EQ(a.send_bits_per_machine, b.send_bits_per_machine);
  EXPECT_EQ(a.recv_bits_per_machine, b.recv_bits_per_machine);
}

TEST(PayloadRef, TakesOwnershipAndViews) {
  Writer w;
  w.put_u32(0xdeadbeef);
  PayloadRef ref(w.take());
  EXPECT_EQ(ref.size(), 4u);
  Reader r(ref);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_FALSE(ref.empty());
}

TEST(PayloadRef, CopiesShareTheBuffer) {
  PayloadRef a(std::vector<std::byte>(16, std::byte{0x7f}));
  const PayloadRef b = a;          // NOLINT(performance-unnecessary-copy)
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_EQ(a.data(), b.data());
  const PayloadRef c = PayloadRef::copy_of(a.view());
  EXPECT_FALSE(c.shares_buffer_with(a));  // deep copy: distinct buffer
  EXPECT_TRUE(std::equal(a.begin(), a.end(), c.begin(), c.end()));
}

TEST(PayloadRef, SuffixIsZeroCopy) {
  Writer w;
  w.put_varint(3);          // 1 byte header
  w.put_u64(0x0123456789abcdefULL);
  PayloadRef whole(w.take());
  const PayloadRef tail = whole.suffix(1);
  EXPECT_TRUE(tail.shares_buffer_with(whole));
  EXPECT_EQ(tail.data(), whole.data() + 1);
  EXPECT_EQ(tail.size(), whole.size() - 1);
  Reader r(tail);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  // Clamped past the end: empty view, still shares ownership.
  EXPECT_EQ(whole.suffix(1000).size(), 0u);
}

TEST(PayloadRef, EmptyPayloadHasNoOwner) {
  PayloadRef a;
  PayloadRef b(std::vector<std::byte>{});
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(Message{}.size_bits(), Message::kHeaderBits);
}

// ---------------------------------------------------------------------------
// Per-link frame batching
// ---------------------------------------------------------------------------

// The framing tests pin this explicit threshold (the static default the
// derived-from-B policy replaced) so the frame/no-frame split is
// independent of the engine's bandwidth setting.
constexpr std::size_t kTestFrameBytes = 256;

// Sender and receiver independently recompute each link's message plan
// from pure hashes, so the receiver can verify counts, order, and bytes
// with no shared state.  Sizes deliberately straddle kTestFrameBytes so
// framed and unframed messages interleave on every link.
struct PlannedMessage {
  std::size_t size;
  std::uint64_t seed;
};

std::vector<PlannedMessage> link_plan(std::uint64_t trial, int step,
                                      std::size_t src, std::size_t dst) {
  Rng plan(mix64(trial * 7919 + static_cast<std::uint64_t>(step),
                 src * 4099 + dst));
  static constexpr std::size_t kSizes[] = {0,   1,   7,   33,  128,
                                           255, 256, 257, 300, 600};
  std::vector<PlannedMessage> out(plan.below(5));
  for (auto& m : out) {
    m.size = kSizes[plan.below(std::size(kSizes))];
    m.seed = plan.next();
  }
  return out;
}

std::vector<std::byte> pattern_bytes(std::uint64_t seed, std::size_t len) {
  Rng g(seed);
  std::vector<std::byte> bytes(len);
  for (auto& b : bytes) b = static_cast<std::byte>(g.next() & 0xff);
  return bytes;
}

// The frame batching property test: random message sizes/counts per
// link, several supersteps, at one framing-threshold setting.  Delivery
// must preserve ascending source and per-link send order with exact
// bytes, and every superstep's rounds/bits/max_link_bits must equal the
// *unbatched* formula (sum per message of kHeaderBits + 8 * payload),
// i.e. batching is invisible to the cost model — whatever the threshold.
void run_framing_property_trial(std::uint64_t trial,
                                std::size_t frame_bytes) {
  constexpr std::size_t kMachines = 6;
  constexpr int kSupersteps = 4;
  constexpr std::uint64_t kBandwidth = 2048;
  {
    Engine engine(kMachines, {.bandwidth_bits = kBandwidth,
                              .seed = trial,
                              .record_timeline = true,
                              .framed_payload_max_bytes = frame_bytes});
    const auto metrics = engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < kSupersteps; ++step) {
        for (std::size_t dst = 0; dst < kMachines; ++dst) {
          if (dst == ctx.id()) continue;
          for (const auto& m : link_plan(trial, step, ctx.id(), dst)) {
            Writer w;
            w.put_bytes(pattern_bytes(m.seed, m.size));
            ctx.send(dst, static_cast<std::uint16_t>(m.size % 7), w);
          }
        }
        const auto in = ctx.exchange();
        // Expected inbox: ascending src, send order within each src.
        std::size_t pos = 0;
        for (std::size_t src = 0; src < kMachines; ++src) {
          if (src == ctx.id()) continue;
          for (const auto& m : link_plan(trial, step, src, ctx.id())) {
            ASSERT_LT(pos, in.size());
            const Message& got = in[pos++];
            ASSERT_EQ(got.src, src);
            ASSERT_EQ(got.tag, static_cast<std::uint16_t>(m.size % 7));
            ASSERT_EQ(got.payload.size(), m.size);
            const auto want = pattern_bytes(m.seed, m.size);
            ASSERT_TRUE(std::equal(want.begin(), want.end(),
                                   got.payload.begin(), got.payload.end()))
                << "payload bytes corrupted (src=" << src
                << " size=" << m.size << ")";
          }
        }
        ASSERT_EQ(pos, in.size()) << "unexpected extra messages";
      }
    });
    // Recompute the unbatched formula from the plans and compare the
    // per-superstep timeline bit for bit.
    ASSERT_EQ(metrics.timeline.size(),
              static_cast<std::size_t>(kSupersteps));
    for (int step = 0; step < kSupersteps; ++step) {
      std::uint64_t bits = 0, msgs = 0, max_link = 0;
      for (std::size_t src = 0; src < kMachines; ++src) {
        for (std::size_t dst = 0; dst < kMachines; ++dst) {
          if (src == dst) continue;
          std::uint64_t link_bits = 0;
          for (const auto& m : link_plan(trial, step, src, dst)) {
            link_bits += Message::kHeaderBits + 8 * m.size;
            ++msgs;
          }
          bits += link_bits;
          max_link = std::max(max_link, link_bits);
        }
      }
      const auto& t = metrics.timeline[static_cast<std::size_t>(step)];
      EXPECT_EQ(t.messages, msgs) << "step " << step;
      EXPECT_EQ(t.bits, bits) << "step " << step;
      EXPECT_EQ(t.max_link_bits, max_link) << "step " << step;
      const std::uint64_t rounds =
          msgs == 0 ? 0
                    : std::max<std::uint64_t>(
                          1, (max_link + kBandwidth - 1) / kBandwidth);
      EXPECT_EQ(t.rounds, rounds) << "step " << step;
    }
  }
}

TEST(Framing, RandomSizesMatchUnbatchedAccountingAndOrder) {
  for (std::uint64_t trial = 1; trial <= 3; ++trial) {
    run_framing_property_trial(trial, kTestFrameBytes);
  }
}

TEST(Framing, ThresholdSweepKeepsUnbatchedAccounting) {
  // EngineConfig::framed_payload_max_bytes is a pure transport knob: the
  // same property must hold with framing disabled (0), at a tiny
  // threshold that leaves most messages unframed (64), at the classic
  // static default (256), at one that frames every planned size (1024),
  // at the value the auto policy derives for this bandwidth, and with
  // the auto sentinel itself (resolved inside the engine).
  for (const std::size_t frame_bytes :
       {std::size_t{0}, std::size_t{64}, std::size_t{256}, std::size_t{1024},
        framed_payload_default_bytes(2048), kFramedPayloadAuto}) {
    run_framing_property_trial(/*trial=*/7, frame_bytes);
  }
}

TEST(Framing, AutoThresholdDerivesFromBandwidth) {
  // The derived default is one round's worth of bytes, clamped: B/8
  // inside [kFramedPayloadMinDefaultBytes, kFramedPayloadMaxDefaultBytes].
  EXPECT_EQ(framed_payload_default_bytes(2048), 256u);
  EXPECT_EQ(framed_payload_default_bytes(1600), 200u);  // B = 16 * 10^2
  EXPECT_EQ(framed_payload_default_bytes(0), kFramedPayloadMinDefaultBytes);
  EXPECT_EQ(framed_payload_default_bytes(8), kFramedPayloadMinDefaultBytes);
  EXPECT_EQ(framed_payload_default_bytes(1u << 20),
            kFramedPayloadMaxDefaultBytes);
  // An engine built with the auto sentinel (the EngineConfig default)
  // exposes the resolved concrete threshold, never the sentinel.
  Engine derived(2, {.bandwidth_bits = 1600, .seed = 1});
  EXPECT_EQ(derived.config().framed_payload_max_bytes, 200u);
  // An explicit setting — including 0 = off — is used verbatim.
  Engine off(2, {.bandwidth_bits = 1600,
                 .seed = 1,
                 .framed_payload_max_bytes = 0});
  EXPECT_EQ(off.config().framed_payload_max_bytes, 0u);
  Engine pinned(2, {.bandwidth_bits = 1600,
                    .seed = 1,
                    .framed_payload_max_bytes = 31});
  EXPECT_EQ(pinned.config().framed_payload_max_bytes, 31u);
}

TEST(Framing, ThresholdKnobControlsTransportSharing) {
  // Observable transport effect of the knob: payloads of 300 bytes ride
  // the shared per-link frame at threshold 1024, and nothing shares at
  // threshold 0 — while metrics stay identical across all settings.
  constexpr std::size_t kPayload = 300;  // past the 256-byte default
  std::vector<Metrics> all;
  for (const std::size_t frame_bytes :
       {std::size_t{0}, std::size_t{256}, std::size_t{1024}}) {
    Engine engine(2, {.bandwidth_bits = 1 << 16,
                      .seed = 11,
                      .record_timeline = true,
                      .framed_payload_max_bytes = frame_bytes});
    all.push_back(engine.run([&](MachineContext& ctx) {
      for (int i = 0; i < 3; ++i) {
        Writer w;
        w.put_bytes(std::vector<std::byte>(kPayload, std::byte{0x7e}));
        ctx.send(1 - ctx.id(), 1, w);
      }
      const auto in = ctx.exchange();
      ASSERT_EQ(in.size(), 3u);
      const bool expect_shared = frame_bytes >= kPayload;
      EXPECT_EQ(in[1].payload.shares_buffer_with(in[2].payload),
                expect_shared)
          << "frame_bytes=" << frame_bytes;
      // Threshold 0 must behave like the pre-knob unframed plane: every
      // message owns its buffer.
      if (frame_bytes == 0) {
        EXPECT_FALSE(in[0].payload.shares_buffer_with(in[1].payload));
      }
      for (const Message& msg : in) {
        ASSERT_EQ(msg.payload.size(), kPayload);
        for (const std::byte b : msg.payload) {
          ASSERT_EQ(b, std::byte{0x7e});
        }
      }
    }));
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i].rounds, all[0].rounds);
    EXPECT_EQ(all[i].messages, all[0].messages);
    EXPECT_EQ(all[i].bits, all[0].bits);
    EXPECT_EQ(all[i].max_link_bits_superstep, all[0].max_link_bits_superstep);
    EXPECT_EQ(all[i].timeline, all[0].timeline);
  }
}

TEST(Framing, SmallPayloadsShareOneFrameBufferPerLink) {
  // Transport-level zero-copy: from the second small message of a
  // (src, dst, superstep) onward, payloads are slices of a single frame
  // buffer.  The link's first message takes the classic zero-copy path
  // (nothing to amortize the copy against), and a payload past the
  // framing threshold always gets its own buffer.
  Engine engine(2, {.bandwidth_bits = 1 << 16,
                    .seed = 5,
                    .framed_payload_max_bytes = kTestFrameBytes});
  engine.run([&](MachineContext& ctx) {
    if (ctx.id() == 0) {
      for (std::uint64_t i = 0; i < 3; ++i) {
        Writer w;
        w.put_varint(i);
        ctx.send(1, 1, w);
      }
      Writer big;
      big.put_bytes(std::vector<std::byte>(kTestFrameBytes + 1,
                                           std::byte{0x42}));
      ctx.send(1, 2, big);
    }
    const auto in = ctx.exchange();
    if (ctx.id() == 1) {
      ASSERT_EQ(in.size(), 4u);
      EXPECT_FALSE(in[0].payload.shares_buffer_with(in[1].payload))
          << "a link's first message is not framed";
      EXPECT_TRUE(in[1].payload.shares_buffer_with(in[2].payload))
          << "second and later small messages share the link frame";
      EXPECT_FALSE(in[3].payload.shares_buffer_with(in[1].payload))
          << "oversized payloads must not ride the frame";
      for (std::uint64_t i = 0; i < 3; ++i) {
        Reader r(in[i].payload);
        EXPECT_EQ(r.get_varint(), i);
      }
      EXPECT_EQ(in[3].payload.size(), kTestFrameBytes + 1);
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
}

TEST(Framing, EmptyAndThresholdBoundaryPayloads) {
  // Sizes 0, 1, exactly-at-threshold, and one-past-threshold all round-
  // trip, and total bits match the unbatched formula.
  const std::vector<std::size_t> sizes = {0, 1, kTestFrameBytes,
                                          kTestFrameBytes + 1};
  Engine engine(2, {.bandwidth_bits = 1 << 16,
                    .seed = 6,
                    .framed_payload_max_bytes = kTestFrameBytes});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      Writer w;
      w.put_bytes(std::vector<std::byte>(sizes[i],
                                         std::byte{static_cast<unsigned char>(
                                             0x10 + i)}));
      ctx.send(1 - ctx.id(), static_cast<std::uint16_t>(i), w);
    }
    const auto in = ctx.exchange();
    ASSERT_EQ(in.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_EQ(in[i].tag, i);
      ASSERT_EQ(in[i].payload.size(), sizes[i]);
      for (const std::byte b : in[i].payload) {
        ASSERT_EQ(b, std::byte{static_cast<unsigned char>(0x10 + i)});
      }
    }
  });
  std::uint64_t want_bits = 0;
  for (const std::size_t s : sizes) {
    want_bits += 2 * (Message::kHeaderBits + 8 * s);  // both directions
  }
  EXPECT_EQ(metrics.bits, want_bits);
}

TEST(PayloadRef, SliceIsZeroCopy) {
  Writer w;
  for (std::uint8_t i = 0; i < 16; ++i) w.put_u8(i);
  PayloadRef whole(w.take());
  const PayloadRef mid = whole.slice(4, 8);
  EXPECT_TRUE(mid.shares_buffer_with(whole));
  EXPECT_EQ(mid.data(), whole.data() + 4);
  ASSERT_EQ(mid.size(), 8u);
  for (std::uint8_t i = 0; i < 8; ++i) {
    EXPECT_EQ(mid.view()[i], std::byte{static_cast<unsigned char>(i + 4)});
  }
  // Clamped: offset past the end is empty, length clamps to the view.
  EXPECT_EQ(whole.slice(100, 4).size(), 0u);
  EXPECT_EQ(whole.slice(12, 100).size(), 4u);
}

TEST(PayloadRef, OutlivesTheEngineRun) {
  // A receiver may keep payloads after the engine run tears down all
  // machine state; the ref count must keep the buffer alive.
  PayloadRef kept;
  {
    Engine engine(2, {.bandwidth_bits = 1 << 12, .seed = 3});
    engine.run([&](MachineContext& ctx) {
      Writer w;
      w.put_varint(77);
      ctx.send(1 - ctx.id(), 1, w);
      auto in = ctx.exchange();
      if (ctx.id() == 0) kept = in.at(0).payload;
    });
  }
  Reader r(kept);
  EXPECT_EQ(r.get_varint(), 77u);
}

}  // namespace
}  // namespace km
