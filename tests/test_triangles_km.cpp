// Tests for distributed triangle enumeration (core/triangles.hpp): exact
// agreement with the sequential reference across graph families, machine
// counts, partitions and seeds (Theorem 5 correctness: "all possible
// triangles are examined"), plus open triads, the baseline, and the
// congested-clique instantiation (Corollary 1).
#include "core/triangles.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/triangle_ref.hpp"

namespace km {
namespace {

TriangleResult run(const Graph& g, std::size_t k, std::uint64_t seed,
                   TriangleConfig cfg = {}, bool baseline = false) {
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(
                        g.num_vertices()),
                    .seed = seed});
  Rng prng(seed ^ 0x7777);
  const auto part = VertexPartition::random(g.num_vertices(), k, prng);
  return baseline ? distributed_triangles_baseline(g, part, engine, cfg)
                  : distributed_triangles(g, part, engine, cfg);
}

TEST(TrianglesKm, ExactOnSmallCompleteGraph) {
  const auto g = complete_graph(12);
  const auto res = run(g, 8, 1);
  EXPECT_EQ(res.total, 220u);  // C(12,3)
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

TEST(TrianglesKm, TriangleFreeGraphsYieldNothing) {
  EXPECT_EQ(run(star_graph(200), 8, 2).total, 0u);
  EXPECT_EQ(run(cycle_graph(100), 8, 3).total, 0u);
  Rng rng(4);
  EXPECT_EQ(run(random_bipartite(50, 50, 0.3, rng), 8, 5).total, 0u);
}

class TriangleGraphSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TriangleGraphSweep, MatchesReferenceOnGnp) {
  const auto [k, seed] = GetParam();
  Rng rng(seed);
  const auto g = gnp(120, 0.15, rng);
  const auto res = run(g, k, seed * 13 + 1);
  EXPECT_EQ(res.total, count_triangles(g)) << "k=" << k;
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
  EXPECT_EQ(res.metrics.dropped_messages, 0u);
}

TEST_P(TriangleGraphSweep, MatchesReferenceOnWattsStrogatz) {
  const auto [k, seed] = GetParam();
  Rng rng(seed ^ 0xABCD);
  const auto g = watts_strogatz(200, 8, 0.2, rng);
  const auto res = run(g, k, seed * 17 + 3);
  EXPECT_EQ(res.total, count_triangles(g)) << "k=" << k;
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

TEST_P(TriangleGraphSweep, MatchesReferenceOnBarabasiAlbert) {
  // Power-law degrees exercise the high-degree designation rule.
  const auto [k, seed] = GetParam();
  Rng rng(seed ^ 0x1234);
  const auto g = barabasi_albert(300, 4, rng);
  const auto res = run(g, k, seed * 19 + 7);
  EXPECT_EQ(res.total, count_triangles(g)) << "k=" << k;
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeed, TriangleGraphSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 27, 64),
                       ::testing::Values(1, 2, 3)));

TEST(TrianglesKm, BaselineMatchesReference) {
  Rng rng(6);
  const auto g = gnp(100, 0.2, rng);
  const auto res = run(g, 8, 7, {}, true);
  EXPECT_EQ(res.total, count_triangles(g));
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

TEST(TrianglesKm, OpenTriadsMatchReference) {
  Rng rng(8);
  const auto g = gnp(80, 0.1, rng);
  TriangleConfig cfg;
  cfg.mode = TriadMode::kOpenTriads;
  const auto res = run(g, 8, 9, cfg);
  EXPECT_EQ(res.total, count_open_triads(g));
  EXPECT_EQ(res.merged_sorted(), enumerate_open_triads(g));
}

TEST(TrianglesKm, OpenTriadsBaselineMatchesReference) {
  Rng rng(10);
  const auto g = watts_strogatz(120, 6, 0.3, rng);
  TriangleConfig cfg;
  cfg.mode = TriadMode::kOpenTriads;
  const auto res = run(g, 8, 11, cfg, true);
  EXPECT_EQ(res.total, count_open_triads(g));
  EXPECT_EQ(res.merged_sorted(), enumerate_open_triads(g));
}

TEST(TrianglesKm, CongestedCliqueIdentityPartition) {
  // Corollary 1's setting: k = n machines, one vertex each.
  Rng rng(12);
  const std::size_t n = 64;
  const auto g = gnp(n, 0.3, rng);
  Engine engine(n, {.bandwidth_bits = EngineConfig::default_bandwidth(n),
                    .seed = 13});
  const auto part = VertexPartition::identity(n);
  const auto res = distributed_triangles(g, part, engine, {});
  EXPECT_EQ(res.total, count_triangles(g));
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

TEST(TrianglesKm, EachTriangleReportedExactlyOnce) {
  Rng rng(14);
  const auto g = gnp(150, 0.12, rng);
  const auto res = run(g, 27, 15);
  const auto merged = res.merged_sorted();
  // merged_sorted is sorted; duplicates would be adjacent.
  EXPECT_EQ(std::adjacent_find(merged.begin(), merged.end()), merged.end());
}

TEST(TrianglesKm, OutputIsSpreadAcrossWorkers) {
  // With k=64 (c=4 colors, 20 triplets) a dense graph's triangles should
  // be distributed over many machines, not concentrated on one.
  Rng rng(16);
  const auto g = gnp(200, 0.3, rng);
  const auto res = run(g, 64, 17);
  const std::size_t active =
      std::count_if(res.per_machine_counts.begin(),
                    res.per_machine_counts.end(),
                    [](std::uint64_t c) { return c > 0; });
  EXPECT_GE(active, 15u);
  EXPECT_EQ(res.total, count_triangles(g));
}

TEST(TrianglesKm, WorkerAndColorCounts) {
  EXPECT_EQ(triangle_color_count(1), 1u);
  EXPECT_EQ(triangle_color_count(8), 2u);
  EXPECT_EQ(triangle_color_count(27), 3u);
  EXPECT_EQ(triangle_color_count(63), 3u);
  EXPECT_EQ(triangle_color_count(64), 4u);
  EXPECT_EQ(triangle_worker_count(1), 1u);
  EXPECT_EQ(triangle_worker_count(8), 4u);    // C(4,3)=4 multisets of 2
  EXPECT_EQ(triangle_worker_count(27), 10u);  // C(5,3)
  EXPECT_EQ(triangle_worker_count(64), 20u);  // C(6,3)
  // Worker count never exceeds k (every triplet fits on a machine).
  for (std::size_t k = 1; k < 600; ++k) {
    EXPECT_LE(triangle_worker_count(k), k) << k;
  }
}

TEST(TrianglesKm, DeterministicForFixedSeeds) {
  Rng rng(18);
  const auto g = gnp(100, 0.15, rng);
  const auto a = run(g, 8, 19);
  const auto b = run(g, 8, 19);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.merged_sorted(), b.merged_sorted());
}

TEST(TrianglesKm, CountingWithoutRecordingTriples) {
  Rng rng(20);
  const auto g = gnp(100, 0.2, rng);
  TriangleConfig cfg;
  cfg.record_triples = false;
  const auto res = run(g, 8, 21, cfg);
  EXPECT_EQ(res.total, count_triangles(g));
  for (const auto& triples : res.per_machine_triples) {
    EXPECT_TRUE(triples.empty());
  }
}

TEST(TrianglesKm, HighDegreeThresholdZeroStillCorrect) {
  // Forcing every vertex through the "high degree" designation path
  // must not change the output, only the communication pattern.
  Rng rng(22);
  const auto g = gnp(80, 0.2, rng);
  TriangleConfig cfg;
  cfg.degree_threshold_factor = 0.0;  // everyone is high-degree
  const auto res = run(g, 8, 23, cfg);
  EXPECT_EQ(res.total, count_triangles(g));
  EXPECT_EQ(res.merged_sorted(), enumerate_triangles(g));
}

TEST(TrianglesKm, MismatchedPartitionThrows) {
  Rng rng(24);
  const auto g = gnp(50, 0.2, rng);
  Engine engine(4, {.bandwidth_bits = 256, .seed = 1});
  Rng prng(1);
  const auto wrong = VertexPartition::random(40, 4, prng);
  EXPECT_THROW(distributed_triangles(g, wrong, engine),
               std::invalid_argument);
}

}  // namespace
}  // namespace km
