// Tests for the runtime subsystem (src/runtime/): workload registry,
// dataset spec parsing / provider, end-to-end workload runs with their
// reference checks, determinism, and the JSON results layer.
#include "runtime/workload.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include "runtime/dataset.hpp"
#include "runtime/results.hpp"

namespace km {
namespace {

// ---- Registry ----

TEST(Registry, HasAtLeastFiveWorkloads) {
  const auto workloads = WorkloadRegistry::instance().list();
  EXPECT_GE(workloads.size(), 5u);
  std::set<std::string> names;
  for (const Workload* w : workloads) {
    EXPECT_FALSE(std::string(w->name()).empty());
    EXPECT_FALSE(std::string(w->description()).empty());
    names.insert(std::string(w->name()));
  }
  EXPECT_EQ(names.size(), workloads.size());  // unique names
  for (const char* expected :
       {"mst", "components", "pagerank", "pagerank_baseline", "triangles",
        "triangles_baseline", "cliques4", "sort"}) {
    EXPECT_NE(WorkloadRegistry::instance().find(expected), nullptr)
        << expected;
  }
}

TEST(Registry, ListIsSortedByName) {
  const auto workloads = WorkloadRegistry::instance().list();
  for (std::size_t i = 1; i < workloads.size(); ++i) {
    EXPECT_LT(workloads[i - 1]->name(), workloads[i]->name());
  }
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(WorkloadRegistry::instance().find("no_such_workload"), nullptr);
}

// ---- Dataset specs ----

TEST(DatasetSpec, ParseAndRoundTrip) {
  const auto spec = DatasetSpec::parse("gnp:n=1000,p=0.01");
  EXPECT_EQ(spec.family, "gnp");
  EXPECT_EQ(spec.get_uint("n", 0), 1000u);
  EXPECT_DOUBLE_EQ(spec.get_double("p", 0.0), 0.01);
  EXPECT_EQ(spec.str(), "gnp:n=1000,p=0.01");
}

TEST(DatasetSpec, SetOverridesInPlace) {
  auto spec = DatasetSpec::parse("gnp:n=1000,p=0.01");
  spec.set("n", "512");
  EXPECT_EQ(spec.str(), "gnp:n=512,p=0.01");
  spec.set("maxw", "99");
  EXPECT_EQ(spec.str(), "gnp:n=512,p=0.01,maxw=99");
}

TEST(DatasetSpec, FilePathIsRawRemainder) {
  const auto spec = DatasetSpec::parse("file:/tmp/a,b=c.txt");
  EXPECT_EQ(spec.family, "file");
  EXPECT_EQ(spec.get_string("path", ""), "/tmp/a,b=c.txt");
}

TEST(DatasetSpec, SyntaxErrors) {
  EXPECT_THROW(DatasetSpec::parse(""), DatasetError);
  EXPECT_THROW(DatasetSpec::parse(":n=3"), DatasetError);
  EXPECT_THROW(DatasetSpec::parse("gnp:n"), DatasetError);
  EXPECT_THROW(DatasetSpec::parse("gnp:=3"), DatasetError);
  EXPECT_THROW(DatasetSpec::parse("gnp:n="), DatasetError);
}

TEST(Dataset, SemanticErrors) {
  // Unknown family, missing required parameter, unknown parameter,
  // malformed value, impossible conversion.
  EXPECT_THROW(load_dataset("nope:n=3", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("gnp:p=0.5", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("gnp:n=10,p=0.5,zzz=1", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("gnp:n=abc,p=0.5", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("lbpr:q=8", DatasetKind::kUndirected, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("gnp:n=10,p=0.5", DatasetKind::kKeys, 1),
               DatasetError);
  EXPECT_THROW(load_dataset("keys:n=10", DatasetKind::kUndirected, 1),
               DatasetError);
}

TEST(Dataset, FileLoaderErrorsKeepPositionContext) {
  const std::string path = testing::TempDir() + "km_bad_edges.txt";
  {
    std::ofstream out(path);
    out << "# header\n0 1\n1 bogus\n";
  }
  try {
    load_dataset("file:" + path, DatasetKind::kUndirected, 1);
    FAIL() << "expected DatasetError for malformed edge list";
  } catch (const DatasetError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path + ":3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bogus'"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

TEST(Dataset, GnpLoadsAndIsDeterministic) {
  const Dataset a = load_dataset("gnp:n=200,p=0.05", DatasetKind::kUndirected, 7);
  const Dataset b = load_dataset("gnp:n=200,p=0.05", DatasetKind::kUndirected, 7);
  const Dataset c = load_dataset("gnp:n=200,p=0.05", DatasetKind::kUndirected, 8);
  EXPECT_EQ(a.n, 200u);
  EXPECT_GT(a.m, 0u);
  EXPECT_EQ(a.graph.edge_list(), b.graph.edge_list());
  EXPECT_NE(a.graph.edge_list(), c.graph.edge_list());  // seed matters
}

TEST(Dataset, ConversionsToDirectedAndWeighted) {
  const Dataset d = load_dataset("ws:n=100,degree=6", DatasetKind::kDirected, 3);
  EXPECT_EQ(d.kind, DatasetKind::kDirected);
  EXPECT_EQ(d.digraph.num_vertices(), 100u);
  EXPECT_EQ(d.m, d.digraph.num_arcs());

  const Dataset w = load_dataset("ws:n=100,degree=6", DatasetKind::kWeighted, 3);
  EXPECT_EQ(w.kind, DatasetKind::kWeighted);
  EXPECT_EQ(w.weighted.num_vertices(), 100u);
  EXPECT_EQ(d.digraph.num_arcs(), 2 * w.weighted.num_edges());
}

TEST(Dataset, LowerBoundGadgetIsDirected) {
  const Dataset d = load_dataset("lbpr:q=16", DatasetKind::kDirected, 1);
  EXPECT_EQ(d.n, 4u * 16 + 1);
  EXPECT_GT(d.m, 0u);
}

TEST(Dataset, KeysFamily) {
  const Dataset a = load_dataset("keys:n=500", DatasetKind::kKeys, 11);
  const Dataset b = load_dataset("keys:n=500", DatasetKind::kKeys, 11);
  EXPECT_EQ(a.keys.size(), 500u);
  EXPECT_EQ(a.keys, b.keys);
}

TEST(Dataset, RmatFamily) {
  const Dataset d = load_dataset("rmat:n=256,m=2000", DatasetKind::kUndirected, 5);
  EXPECT_EQ(d.n, 256u);
  EXPECT_GT(d.m, 500u);
}

// ---- End-to-end workload runs ----

RunResult run_by_name(const std::string& name, const std::string& spec,
                      const RunParams& params) {
  const Workload* w = WorkloadRegistry::instance().find(name);
  EXPECT_NE(w, nullptr) << name;
  const Dataset ds = load_dataset(spec, w->input_kind(), params.seed);
  return run_workload(*w, ds, params);
}

TEST(RunWorkload, MstChecksOutAgainstKruskal) {
  const RunResult r =
      run_by_name("mst", "gnp:n=150,p=0.05", {.k = 4, .seed = 42});
  EXPECT_TRUE(r.check.performed);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
  EXPECT_GT(r.metrics.rounds, 0u);
  EXPECT_EQ(r.params.bandwidth_bits,
            EngineConfig::default_bandwidth(150));  // resolved from 0
  ASSERT_FALSE(r.metrics.timeline.empty());
  std::uint64_t rounds = 0, messages = 0, bits = 0;
  for (const auto& s : r.metrics.timeline) {
    rounds += s.rounds;
    messages += s.messages;
    bits += s.bits;
  }
  EXPECT_EQ(rounds, r.metrics.rounds);
  EXPECT_EQ(messages, r.metrics.messages);
  EXPECT_EQ(bits, r.metrics.bits);
}

TEST(RunWorkload, ComponentsTrianglesSortAllCheckOut) {
  const RunResult comp =
      run_by_name("components", "gnp:n=120,p=0.02", {.k = 4, .seed = 9});
  EXPECT_TRUE(comp.check.performed);
  EXPECT_TRUE(comp.check.ok) << comp.check.detail;

  const RunResult tri =
      run_by_name("triangles", "ws:n=150,degree=8,beta=0.1", {.k = 8, .seed = 9});
  EXPECT_TRUE(tri.check.ok) << tri.check.detail;

  const RunResult srt = run_by_name("sort", "keys:n=4000", {.k = 4, .seed = 9});
  EXPECT_TRUE(srt.check.ok) << srt.check.detail;
}

TEST(RunWorkload, PageRankChecksAgainstFixpoint) {
  const RunResult r =
      run_by_name("pagerank", "ws:n=150,degree=6", {.k = 4, .seed = 5});
  EXPECT_TRUE(r.check.performed);
  EXPECT_TRUE(r.check.ok) << r.check.detail;
  bool has_l1 = false;
  for (const auto& [name, value] : r.outputs) has_l1 |= name == "l1_error";
  EXPECT_TRUE(has_l1);
}

TEST(RunWorkload, DeterministicForFixedSeed) {
  const RunParams params{.k = 4, .seed = 123};
  const RunResult a = run_by_name("triangles", "gnp:n=100,p=0.1", params);
  const RunResult b = run_by_name("triangles", "gnp:n=100,p=0.1", params);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.bits, b.metrics.bits);
  EXPECT_EQ(a.metrics.timeline, b.metrics.timeline);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(RunWorkload, KindMismatchThrows) {
  const Workload* mst = WorkloadRegistry::instance().find("mst");
  ASSERT_NE(mst, nullptr);
  const Dataset ds = load_dataset("gnp:n=50,p=0.1", DatasetKind::kUndirected, 1);
  EXPECT_THROW(run_workload(*mst, ds, {.k = 4}), std::invalid_argument);
}

TEST(RunWorkload, CheckCanBeDisabled) {
  const RunResult r = run_by_name("triangles", "gnp:n=80,p=0.1",
                                  {.k = 4, .seed = 1, .check = false});
  EXPECT_FALSE(r.check.performed);
}

TEST(RunWorkload, TimelineCanBeDisabled) {
  const RunResult r =
      run_by_name("triangles", "gnp:n=80,p=0.1",
                  {.k = 4, .seed = 1, .record_timeline = false});
  EXPECT_TRUE(r.metrics.timeline.empty());
  EXPECT_GT(r.metrics.supersteps, 0u);
}

// ---- Results JSON ----

TEST(Results, JsonContainsSchemaAndTimeline) {
  const RunResult r =
      run_by_name("mst", "gnp:n=100,p=0.08", {.k = 4, .seed = 2});
  const std::string json = run_result_to_json(r);
  for (const char* needle :
       {"\"schema\": \"km.run_result/v1\"", "\"workload\": \"mst\"",
        "\"spec\": \"gnp:n=100,p=0.08\"", "\"kind\": \"weighted_graph\"",
        "\"rounds\":", "\"messages\":", "\"bits\":", "\"timeline\":",
        "\"superstep\": 0", "\"total_weight\":", "\"ok\": true"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Results, JsonDeterministicModuloWallClock) {
  auto strip_wall = [](std::string json) {
    const auto pos = json.find("\"wall_ms\":");
    const auto end = json.find('\n', pos);
    json.erase(pos, end - pos);
    return json;
  };
  const RunParams params{.k = 4, .seed = 77};
  const std::string a =
      strip_wall(run_result_to_json(run_by_name("sort", "keys:n=2000", params)));
  const std::string b =
      strip_wall(run_result_to_json(run_by_name("sort", "keys:n=2000", params)));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace km
