// Tests for core/sketch.hpp (1-sparse cells, ℓ₀ sketches) and the
// sketch algorithms built on them (core/connectivity.hpp).
//
// The property trio the sketch machinery stands on:
//   - validity: sampling a sketch of an edge set only ever returns a
//     member (and, for a folded component sketch, a *crossing* edge);
//   - linearity: sketch(A) + sketch(B) = sketch(A ⊎ B), exactly, cell by
//     cell — the merge is integer vector addition;
//   - merge-order invariance: for a fixed seed the folded sketch (and
//     hence the sampled edge) is identical whatever order the parts
//     were merged in, including through serialization.
// Distributed: sketch connectivity against BFS and sketch MST against
// Kruskal across every generator family on a k × seed grid (the
// acceptance grid for ISSUE 5).
#include "core/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/weighted.hpp"
#include "runtime/dataset.hpp"
#include "runtime/workload.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

// ---------------------------------------------------------------------------
// Field arithmetic and cells
// ---------------------------------------------------------------------------

TEST(Sketch, Mod61Arithmetic) {
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() % kSketchPrime;
    const std::uint64_t b = rng.next() % kSketchPrime;
    const auto want = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % kSketchPrime);
    ASSERT_EQ(mulmod61(a, b), want);
  }
  EXPECT_EQ(powmod61(2, 0), 1u);
  EXPECT_EQ(powmod61(2, 10), 1024u);
  EXPECT_EQ(powmod61(3, 61), mulmod61(powmod61(3, 60), 3));
  // Fermat: z^(p-1) = 1 mod p.
  EXPECT_EQ(powmod61(123456789, kSketchPrime - 1), 1u);
}

TEST(Sketch, Mod61BoundaryInputsAliasTheirResidues) {
  // mulmod61/powmod61 accept arbitrary u64 inputs and canonicalize at
  // entry: p aliases 0, p+1 = 2^61 aliases 1, UINT64_MAX = 8p+7
  // aliases 7.  Exhaustive cross-product over the boundary set against
  // a __int128 reference, so a regression in the canonicalization (the
  // classic "accepts [0, 2^61] but not above" bug) cannot hide.
  const std::uint64_t p = kSketchPrime;
  const std::uint64_t boundary[] = {0,       1,           p - 1,
                                    p,       p + 1,       std::uint64_t{1} << 61,
                                    p + 7,   UINT64_MAX - 1, UINT64_MAX};
  const auto ref_mul = [&](std::uint64_t a, std::uint64_t b) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a % p) * (b % p)) % p);
  };
  for (const std::uint64_t a : boundary) {
    for (const std::uint64_t b : boundary) {
      ASSERT_EQ(mulmod61(a, b), ref_mul(a, b)) << "a=" << a << " b=" << b;
      ASSERT_LT(mulmod61(a, b), p) << "non-canonical result";
    }
  }
  // powmod61: boundary bases under a reference square-and-multiply
  // built from the verified mulmod, across small and boundary exponents
  // (the exponent is a plain integer, not reduced mod p-1).
  const auto ref_pow = [&](std::uint64_t base, std::uint64_t exp) {
    std::uint64_t acc = 1, sq = base % p;
    for (; exp != 0; exp >>= 1) {
      if (exp & 1) acc = ref_mul(acc, sq);
      sq = ref_mul(sq, sq);
    }
    return acc;
  };
  for (const std::uint64_t base : boundary) {
    for (const std::uint64_t exp :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
          std::uint64_t{63}, p - 1, p, p + 1, UINT64_MAX}) {
      ASSERT_EQ(powmod61(base, exp), ref_pow(base, exp))
          << "base=" << base << " exp=" << exp;
    }
  }
  // Fermat sanity at the aliases: (p+1) ≡ 1, so any exponent fixes it;
  // UINT64_MAX ≡ 7, so its (p-1)-th power is 1.
  EXPECT_EQ(powmod61(p + 1, UINT64_MAX), 1u);
  EXPECT_EQ(powmod61(UINT64_MAX, p - 1), 1u);
}

TEST(Sketch, CellOneSparseRecoveryIsExact) {
  const std::uint64_t z = sketch_fingerprint_base(7);
  for (const std::uint64_t id : {0ull, 1ull, 77ull, (1ull << 40) + 5}) {
    for (const int sign : {+1, -1}) {
      SketchCell cell;
      cell.add(id, sign, z);
      EXPECT_FALSE(cell.is_zero());
      const auto got = cell.recover(z, 0);
      ASSERT_TRUE(got.has_value()) << "id=" << id << " sign=" << sign;
      EXPECT_EQ(*got, id);
    }
  }
}

TEST(Sketch, CellRejectsNonSparseAndCancelsExactly) {
  const std::uint64_t z = sketch_fingerprint_base(9);
  SketchCell two;
  two.add(5, +1, z);
  two.add(9, +1, z);
  EXPECT_FALSE(two.recover(z, 0).has_value()) << "2-sparse must not recover";

  SketchCell fake;  // +1, +1, -1 over distinct ids: count == 1, not 1-sparse
  fake.add(3, +1, z);
  fake.add(11, +1, z);
  fake.add(20, -1, z);
  EXPECT_FALSE(fake.recover(z, 0).has_value())
      << "the fingerprint must veto count-coincidences";

  SketchCell cancel;
  cancel.add(42, +1, z);
  cancel.add(42, -1, z);
  EXPECT_TRUE(cancel.is_zero()) << "+1/-1 at the same id cancels exactly";

  // Universe bound: a valid recovery outside the universe is rejected.
  SketchCell big;
  big.add(1000, +1, z);
  EXPECT_FALSE(big.recover(z, 1000).has_value());
  EXPECT_TRUE(big.recover(z, 1001).has_value());
}

TEST(Sketch, CellLinearityAndSerializationRoundTrip) {
  const std::uint64_t z = sketch_fingerprint_base(13);
  Rng rng(99);
  SketchCell a, b, both;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t id = rng.below(1 << 20);
    const int sign = rng.bernoulli(0.5) ? +1 : -1;
    if (i % 2 == 0) {
      a.add(id, sign, z);
    } else {
      b.add(id, sign, z);
    }
    both.add(id, sign, z);
  }
  SketchCell merged = a;
  merged.merge(b);
  EXPECT_EQ(merged, both) << "cell merge is exact vector addition";

  Writer w;
  merged.serialize(w);
  const auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(SketchCell::deserialize(r), merged);
  EXPECT_TRUE(r.done());
}

// ---------------------------------------------------------------------------
// ℓ₀ sketches: validity, linearity, merge-order invariance
// ---------------------------------------------------------------------------

TEST(Sketch, SampleReturnsOnlyMembers) {
  // Sketch a random id set and sample: failure (nullopt) is allowed, a
  // non-member never is.  With 4 rows the failure rate is small; assert
  // a healthy success count across set sizes and seeds.
  int successes = 0, trials = 0;
  for (const std::size_t size : {1u, 2u, 5u, 37u, 200u}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Rng rng(mix64(seed, size));
      std::vector<std::uint64_t> members =
          rng.sample_distinct(1 << 16, size);
      L0Sketch sketch({.id_bits = 16, .rows = 4, .seed = seed});
      for (const std::uint64_t id : members) sketch.add(id, +1);
      EXPECT_FALSE(sketch.empty_whp());
      ++trials;
      if (const auto got = sketch.sample()) {
        ++successes;
        EXPECT_TRUE(std::binary_search(members.begin(), members.end(), *got))
            << "sampled a non-member id " << *got;
      }
    }
  }
  EXPECT_GE(successes * 10, trials * 7)
      << "ℓ₀ sampling failed too often: " << successes << "/" << trials;
}

TEST(Sketch, SampleIsRoughlyUniformOverMembers) {
  // "Uniformly valid": over many independent seeds, every member of a
  // small set gets sampled a non-trivial share of the time.
  const std::vector<std::uint64_t> members = {3, 99, 1024, 4097,
                                              20000, 31337, 40000, 65535};
  std::map<std::uint64_t, int> freq;
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    L0Sketch sketch({.id_bits = 16, .rows = 4, .seed = seed});
    for (const std::uint64_t id : members) sketch.add(id, +1);
    if (const auto got = sketch.sample()) {
      ++successes;
      ++freq[*got];
    }
  }
  EXPECT_GE(successes, 250);
  for (const std::uint64_t id : members) {
    // Uniform would be ~successes/8 ≈ 35; demand a loose floor so skew
    // fails loudly without making the test flaky.
    EXPECT_GE(freq[id], 5) << "member " << id << " is starved";
  }
}

/// Sketch of one vertex's signed edge-incidence vector.
L0Sketch vertex_sketch(const Graph& g, Vertex v, const L0SketchShape& shape,
                       const EdgeIdCodec& codec) {
  L0Sketch sketch(shape);
  for (const Vertex nb : g.neighbors(v)) {
    sketch.add(codec.encode(v, nb), EdgeIdCodec::sign_for(v, nb));
  }
  return sketch;
}

TEST(Sketch, IncidenceSketchesAreLinearAndCancelInternalEdges) {
  Rng rng(5);
  const Graph g = gnp(64, 0.15, rng);
  const EdgeIdCodec codec(g.num_vertices());
  const L0SketchShape shape{.id_bits = codec.id_bits(), .rows = 4, .seed = 17};

  // Linearity: merging {0..31} and {32..63} group sketches equals the
  // sketch built by adding every vertex directly.
  L0Sketch lo(shape), hi(shape), direct(shape);
  for (Vertex v = 0; v < 64; ++v) {
    L0Sketch vs = vertex_sketch(g, v, shape, codec);
    direct.merge(vs);
    (v < 32 ? lo : hi).merge(vs);
  }
  L0Sketch merged = lo;
  merged.merge(hi);
  EXPECT_EQ(merged, direct) << "sketch(A) + sketch(B) != sketch(A ⊎ B)";

  // Every edge has both endpoints in V, so the full sum cancels to the
  // empty vector — not just whp, exactly.
  for (std::size_t row = 0; row < shape.rows; ++row) {
    for (std::size_t level = 0; level < shape.levels(); ++level) {
      EXPECT_TRUE(merged.cell(row, level).is_zero())
          << "internal edge failed to cancel at (" << row << ", " << level
          << ")";
    }
  }

  // A folded half-sketch samples only edges crossing the cut.
  if (const auto id = lo.sample()) {
    const auto [a, b] = codec.decode(*id);
    EXPECT_TRUE((a < 32) != (b < 32))
        << "sampled edge (" << a << "," << b << ") does not cross the cut";
    const auto nbrs = g.neighbors(a);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end())
        << "sampled a non-edge";
  }
}

TEST(Sketch, MergeOrderNeverChangesTheSample) {
  Rng rng(6);
  const Graph g = gnp(40, 0.2, rng);
  const EdgeIdCodec codec(g.num_vertices());
  const L0SketchShape shape{.id_bits = codec.id_bits(), .rows = 4, .seed = 23};
  std::vector<Vertex> group(20);
  std::iota(group.begin(), group.end(), Vertex{0});

  std::optional<std::uint64_t> first_sample;
  Rng shuffler(77);
  for (int order = 0; order < 6; ++order) {
    shuffler.shuffle(std::span<Vertex>(group));
    L0Sketch folded(shape);
    for (const Vertex v : group) {
      // Every other order also routes the part through serialization,
      // the way proxies fold sketches off the wire.
      L0Sketch vs = vertex_sketch(g, v, shape, codec);
      if (order % 2 == 0) {
        folded.merge(vs);
      } else {
        Writer w;
        vs.serialize(w);
        const auto bytes = w.take();
        Reader r(bytes);
        folded.merge_serialized(r);
        EXPECT_TRUE(r.done());
      }
    }
    const auto got = folded.sample();
    if (order == 0) {
      first_sample = got;
    } else {
      EXPECT_EQ(got, first_sample)
          << "merge order " << order << " changed the sampled edge";
    }
  }
}

TEST(Sketch, EdgeIdCodecRoundTrips) {
  for (const std::size_t n : {2u, 3u, 100u, 4096u}) {
    const EdgeIdCodec codec(n);
    Rng rng(n);
    for (int i = 0; i < 50; ++i) {
      const auto a = static_cast<Vertex>(rng.below(n));
      auto b = static_cast<Vertex>(rng.below(n));
      if (a == b) b = (b + 1) % n;
      const auto [lo, hi] = codec.decode(codec.encode(a, b));
      EXPECT_EQ(lo, std::min(a, b));
      EXPECT_EQ(hi, std::max(a, b));
      EXPECT_EQ(codec.encode(a, b), codec.encode(b, a));
    }
  }
}

TEST(Sketch, EdgeIdCodecHandlesTheVbits32Ceiling) {
  // At n = 2^32 (the full Vertex range) vbits saturates at 32: the edge
  // id spans the whole 64-bit word, every shift in encode/decode is by
  // exactly 32 (never 64, which would be UB), and ids stay unique.
  // Regression grid: the largest representable vertex ids.
  const EdgeIdCodec codec(std::size_t{1} << 32);
  ASSERT_EQ(codec.vbits, 32u);
  ASSERT_EQ(codec.id_bits(), 64u);
  const Vertex top = 0xFFFFFFFFu;
  const Vertex almost = 0xFFFFFFFEu;
  const std::pair<Vertex, Vertex> edges[] = {
      {almost, top}, {0, top}, {0, 1}, {1, top}, {almost, 0}};
  std::vector<std::uint64_t> ids;
  for (const auto& [a, b] : edges) {
    const std::uint64_t id = codec.encode(a, b);
    EXPECT_NE(id, 0u) << "edge ids must be nonzero";
    const auto [lo, hi] = codec.decode(id);
    EXPECT_EQ(lo, std::min(a, b)) << "a=" << a << " b=" << b;
    EXPECT_EQ(hi, std::max(a, b)) << "a=" << a << " b=" << b;
    EXPECT_EQ(id, codec.encode(b, a));
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "distinct edges collided at vbits=32";
  // The extreme edge {2^32-2, 2^32-1} also survives a sketch round
  // trip: cell arithmetic (z^id over Mersenne-61) is id-width agnostic.
  const std::uint64_t z = sketch_fingerprint_base(17);
  SketchCell cell;
  cell.add(codec.encode(almost, top), +1, z);
  const auto got = cell.recover(z, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, codec.encode(almost, top));
}

// ---------------------------------------------------------------------------
// Distributed: the acceptance grid
// ---------------------------------------------------------------------------

RunResult run_registered(const std::string& workload_name,
                         const std::string& spec, std::size_t k,
                         std::uint64_t seed) {
  const Workload* workload =
      WorkloadRegistry::instance().find(workload_name);
  if (workload == nullptr) throw std::logic_error("unknown workload");
  RunParams params;
  params.k = k;
  params.seed = seed;
  params.record_timeline = false;
  const Dataset dataset = load_dataset(spec, workload->input_kind(), seed);
  return run_workload(*workload, dataset, params);
}

// One dataset spec per generator family named in the acceptance
// criteria; n kept small so the full grid stays fast.
const char* const kFamilySpecs[] = {
    "gnp:n=60,p=0.07,maxw=512",
    "rmat:n=64,m=180,maxw=512",
    "ba:n=60,attach=3,maxw=512",
    "ws:n=60,degree=6,beta=0.2,maxw=512",
    "grid:rows=8,cols=8,maxw=512",
    "complete:n=24,maxw=512",
};

TEST(SketchKm, MstSketchMatchesKruskalOnEveryFamilyAcrossKAndSeeds) {
  for (const char* spec : kFamilySpecs) {
    for (const std::size_t k : {4u, 8u, 16u}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        const RunResult result = run_registered("mst_sketch", spec, k, seed);
        ASSERT_TRUE(result.check.performed);
        EXPECT_TRUE(result.check.ok)
            << spec << " k=" << k << " seed=" << seed << ": "
            << result.check.detail;
      }
    }
  }
}

TEST(SketchKm, ConnectivityMatchesBfsOnEveryFamilyAcrossK) {
  for (const char* spec : kFamilySpecs) {
    for (const std::size_t k : {4u, 8u, 16u}) {
      for (const char* workload : {"connectivity", "connectivity_baseline"}) {
        const RunResult result = run_registered(workload, spec, k, 5);
        ASSERT_TRUE(result.check.performed);
        EXPECT_TRUE(result.check.ok)
            << workload << " on " << spec << " k=" << k << ": "
            << result.check.detail;
      }
    }
  }
}

TEST(SketchKm, HandlesEdgelessAndDisconnectedInputs) {
  // Edgeless graph: every vertex is its own component, MSF is empty.
  {
    const RunResult r =
        run_registered("connectivity", "gnp:n=40,p=0", 4, 1);
    EXPECT_TRUE(r.check.ok) << r.check.detail;
  }
  {
    const RunResult r =
        run_registered("mst_sketch", "gnp:n=40,p=0,maxw=16", 4, 1);
    EXPECT_TRUE(r.check.ok) << r.check.detail;
  }
  // Forest of two far-apart cliques via direct core API.
  Rng rng(8);
  std::vector<Edge> edges;
  for (Vertex a = 0; a < 6; ++a) {
    for (Vertex b = a + 1; b < 6; ++b) {
      edges.emplace_back(a, b);            // clique on {0..5}
      edges.emplace_back(a + 20, b + 20);  // clique on {20..25}
    }
  }
  const Graph g = Graph::from_edges(30, std::move(edges));
  Engine engine(4, {.bandwidth_bits = 256, .seed = 2});
  const auto part = VertexPartition::by_hash(30, 4, 99);
  const auto dist = sketch_connectivity(g, part, engine, {.seed = 31});
  // 2 cliques + 18 isolated vertices.
  EXPECT_EQ(dist.num_components, 20u);
  EXPECT_TRUE(same_labeling(dist.labels, connected_components(g)));
}

TEST(SketchKm, SketchMstRejectsOversizedWeights) {
  // Weights past the 63-bit key budget must throw, not corrupt keys.
  std::vector<WeightedEdge> edges{{0, 1, std::uint64_t{1} << 62}};
  const auto g = WeightedGraph::from_edges(4, std::move(edges));
  Engine engine(2, {.bandwidth_bits = 256, .seed = 2});
  const auto part = VertexPartition::by_hash(4, 2, 7);
  EXPECT_THROW(sketch_mst(g, part, engine), std::invalid_argument);
}

}  // namespace
}  // namespace km
