// Unit tests for the streaming JSON writer (util/json.hpp).
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace km {
namespace {

TEST(Json, CompactObject) {
  JsonWriter w(0);
  w.begin_object()
      .field("name", "mst")
      .field("k", std::uint64_t{8})
      .field("ok", true)
      .end_object();
  EXPECT_EQ(w.str(), R"({"name":"mst","k":8,"ok":true})");
}

TEST(Json, NestedArraysAndObjects) {
  JsonWriter w(0);
  w.begin_object().key("timeline").begin_array();
  for (std::uint64_t i = 0; i < 2; ++i) {
    w.begin_object().field("rounds", i).end_object();
  }
  w.end_array().end_object();
  EXPECT_EQ(w.str(), R"({"timeline":[{"rounds":0},{"rounds":1}]})");
}

TEST(Json, PrettyIndentation) {
  JsonWriter w(2);
  w.begin_object().field("a", std::uint64_t{1}).end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  JsonWriter w(2);
  w.begin_object().key("xs").begin_array().end_array().end_object();
  EXPECT_EQ(w.str(), "{\n  \"xs\": []\n}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), R"("a\"b")");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), R"("back\\slash")");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), R"("line\nbreak\ttab")");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, NumberFormats) {
  JsonWriter w(0);
  w.begin_array()
      .value(std::int64_t{-5})
      .value(std::uint64_t{18446744073709551615ULL})
      .value(0.25)
      .value(1.0)
      .end_array();
  EXPECT_EQ(w.str(), "[-5,18446744073709551615,0.25,1]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w(0);
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, DoubleRoundTrip) {
  JsonWriter w(0);
  const double x = 0.1 + 0.2;  // 0.30000000000000004
  w.value(x);
  EXPECT_EQ(std::stod(w.str()), x);
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(std::uint64_t{1}), std::logic_error);  // no key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("x"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // incomplete document
  }
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_THROW(w.begin_object(), std::logic_error);  // already complete
  }
}

}  // namespace
}  // namespace km
