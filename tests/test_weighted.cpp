// Tests for the weighted substrate (graph/weighted.hpp): CSR invariants,
// union-find, and the Kruskal reference MST.
#include "graph/weighted.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace km {
namespace {

TEST(WeightedGraph, BasicConstruction) {
  const auto g = WeightedGraph::from_edges(
      4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 7}, {0, 3, 1}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  // Adjacency and weights are parallel arrays.
  const auto ns = g.neighbors(1);
  const auto ws = g.weights(1);
  ASSERT_EQ(ns.size(), 2u);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (ns[i] == 0) {
      EXPECT_EQ(ws[i], 5u);
    }
    if (ns[i] == 2) {
      EXPECT_EQ(ws[i], 3u);
    }
  }
}

TEST(WeightedGraph, ParallelEdgesKeepLightest) {
  const auto g = WeightedGraph::from_edges(2, {{0, 1, 9}, {1, 0, 4}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights(0)[0], 4u);
}

TEST(WeightedGraph, SelfLoopsDropped) {
  const auto g = WeightedGraph::from_edges(2, {{0, 0, 3}, {0, 1, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(WeightedGraph, OutOfRangeThrows) {
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 5, 1}}), std::out_of_range);
}

TEST(WeightedGraph, TopologyMatches) {
  Rng rng(1);
  const auto base = gnp(50, 0.2, rng);
  const auto wg = WeightedGraph::randomize_weights(base, 100, rng);
  EXPECT_EQ(wg.topology().edge_list(), base.edge_list());
}

TEST(WeightedGraph, CompleteRandomShape) {
  Rng rng(2);
  const auto g = WeightedGraph::complete_random(10, 1000, rng);
  EXPECT_EQ(g.num_edges(), 45u);
  for (const auto& e : g.edge_list()) {
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 1000u);
  }
}

TEST(WeightedGraph, EdgeOrderIsTotal) {
  // mst_edge_less must order equal-weight edges by endpoints.
  const WeightedEdge a{0, 1, 5}, b{0, 2, 5}, c{0, 1, 4};
  EXPECT_TRUE(mst_edge_less(c, a));
  EXPECT_TRUE(mst_edge_less(a, b));
  EXPECT_FALSE(mst_edge_less(a, a));
}

TEST(UnionFind, BasicOperations) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(Kruskal, PathGraphTakesAllEdges) {
  Rng rng(3);
  const auto g = WeightedGraph::randomize_weights(path_graph(10), 50, rng);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.edges.size(), 9u);
}

TEST(Kruskal, KnownSmallInstance) {
  //     1       2
  //  0 --- 1 --- 2
  //   \         /
  //    \---9---/        MST = {(0,1,1),(1,2,2)}, weight 3.
  const auto g =
      WeightedGraph::from_edges(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 9}});
  const auto mst = kruskal_mst(g);
  ASSERT_EQ(mst.edges.size(), 2u);
  EXPECT_EQ(mst.total_weight, 3u);
  EXPECT_EQ(mst.edges[0], (WeightedEdge{0, 1, 1}));
  EXPECT_EQ(mst.edges[1], (WeightedEdge{1, 2, 2}));
}

TEST(Kruskal, SpanningForestOnDisconnectedGraph) {
  const auto g = WeightedGraph::from_edges(
      5, {{0, 1, 2}, {1, 2, 3}, {3, 4, 1}});
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.edges.size(), 3u);  // 2 components: (3-1) + (2-1) edges
  EXPECT_EQ(mst.total_weight, 6u);
}

TEST(Kruskal, TreeSizeOnConnectedGraphs) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const auto base = gnp(80, 0.15, rng);
    if (!is_connected(base)) continue;
    const auto g = WeightedGraph::randomize_weights(base, 1000, rng);
    EXPECT_EQ(kruskal_mst(g).edges.size(), 79u);
  }
}

TEST(Kruskal, UniqueForestUnderTieBreakOrder) {
  // With many duplicate weights the forest is still deterministic.
  Rng rng(5);
  const auto base = gnp(60, 0.3, rng);
  const auto g = WeightedGraph::randomize_weights(base, 3, rng);  // ties!
  const auto a = kruskal_mst(g);
  const auto b = kruskal_mst(g);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Kruskal, WeightIsMinimalAgainstRandomSpanningTrees) {
  // Any other spanning structure must weigh at least as much.
  Rng rng(6);
  const auto g = WeightedGraph::complete_random(20, 100, rng);
  const auto mst = kruskal_mst(g);
  // Compare against star spanning trees rooted at each vertex.
  auto weight_of_star = [&](Vertex root) {
    std::uint64_t total = 0;
    const auto ns = g.neighbors(root);
    const auto ws = g.weights(root);
    for (std::size_t i = 0; i < ns.size(); ++i) total += ws[i];
    return total;
  };
  for (Vertex r = 0; r < 20; ++r) {
    EXPECT_LE(mst.total_weight, weight_of_star(r));
  }
}

}  // namespace
}  // namespace km
