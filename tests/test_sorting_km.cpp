// Tests for distributed sample sort (core/sorting.hpp): machine i must
// end with exactly the i-th block of order statistics (the paper's
// sorting output requirement, Section 1.3).
#include "core/sorting.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace km {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

void expect_exact_blocks(const SortResult& res,
                         std::vector<std::uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  std::vector<std::uint64_t> merged;
  for (std::size_t i = 0; i < res.blocks.size(); ++i) {
    EXPECT_TRUE(std::is_sorted(res.blocks[i].begin(), res.blocks[i].end()));
    EXPECT_EQ(res.blocks[i].size(), res.offsets[i + 1] - res.offsets[i])
        << "machine " << i;
    merged.insert(merged.end(), res.blocks[i].begin(), res.blocks[i].end());
  }
  EXPECT_EQ(merged, keys);
}

SortResult run(const std::vector<std::uint64_t>& keys, std::size_t k,
               std::uint64_t seed, std::uint64_t bandwidth = 0) {
  Engine engine(k, {.bandwidth_bits =
                        bandwidth ? bandwidth
                                  : EngineConfig::default_bandwidth(
                                        std::max<std::size_t>(keys.size(), 2)),
                    .seed = seed});
  return distributed_sample_sort(keys, engine);
}

TEST(SortingKm, SortsUniformKeysExactly) {
  const auto keys = random_keys(5000, 1);
  expect_exact_blocks(run(keys, 8, 2), keys);
}

TEST(SortingKm, SortsWithDuplicates) {
  Rng rng(3);
  std::vector<std::uint64_t> keys(3000);
  for (auto& k : keys) k = rng.below(50);  // heavy duplication
  expect_exact_blocks(run(keys, 8, 4), keys);
}

TEST(SortingKm, SortsAlreadySortedAndReversed) {
  std::vector<std::uint64_t> keys(2000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  expect_exact_blocks(run(keys, 4, 5), keys);
  std::reverse(keys.begin(), keys.end());
  expect_exact_blocks(run(keys, 4, 6), keys);
}

TEST(SortingKm, SortsConstantKeys) {
  std::vector<std::uint64_t> keys(1000, 7);
  expect_exact_blocks(run(keys, 8, 7), keys);
}

TEST(SortingKm, SkewedDistribution) {
  Rng rng(8);
  std::vector<std::uint64_t> keys(4000);
  for (auto& k : keys) {
    // Zipf-ish skew: mostly small values, occasional huge ones.
    k = rng.bernoulli(0.9) ? rng.below(100) : rng.next();
  }
  expect_exact_blocks(run(keys, 16, 9), keys);
}

class SortMachineSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortMachineSweep, ExactForAnyMachineCount) {
  const auto keys = random_keys(2500, 10 + GetParam());
  expect_exact_blocks(run(keys, GetParam(), 11), keys);
}

INSTANTIATE_TEST_SUITE_P(Machines, SortMachineSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31));

TEST(SortingKm, TinyInputs) {
  expect_exact_blocks(run({}, 4, 12), {});
  expect_exact_blocks(run({42}, 4, 13), {42});
  expect_exact_blocks(run({5, 3}, 4, 14), {5, 3});
}

TEST(SortingKm, OffsetsAreEvenBlocks) {
  const auto res = run(random_keys(1000, 15), 8, 16);
  ASSERT_EQ(res.offsets.size(), 9u);
  EXPECT_EQ(res.offsets.front(), 0u);
  EXPECT_EQ(res.offsets.back(), 1000u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(res.offsets[i + 1] - res.offsets[i], 125u);
  }
}

TEST(SortingKm, DeterministicForFixedSeeds) {
  const auto keys = random_keys(2000, 17);
  const auto a = run(keys, 8, 18);
  const auto b = run(keys, 8, 18);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(SortingKm, RoundsShrinkWithMoreMachines) {
  // O~(n/k^2): quadrupling k should cut rounds by far more than 4x.
  // B is kept small so key traffic, not fixed phase overhead, dominates.
  const auto keys = random_keys(60000, 19);
  const auto r4 = run(keys, 4, 20, /*bandwidth=*/64).metrics.rounds;
  const auto r16 = run(keys, 16, 21, /*bandwidth=*/64).metrics.rounds;
  EXPECT_LT(r16 * 4, r4) << "r4=" << r4 << " r16=" << r16;
}

}  // namespace
}  // namespace km
