// Tests for structural graph properties (graph/properties.hpp).
#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace km {
namespace {

TEST(Properties, DegreeStats) {
  const auto g = star_graph(10);
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 18.0 / 10.0);
  EXPECT_EQ(s.sum_squares, 81u + 9u);
}

TEST(Properties, ConnectedComponentsOfDisjointPaths) {
  // Two disjoint paths: 0-1-2 and 3-4.
  const auto g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);  // isolated vertex = own component
  EXPECT_EQ(num_connected_components(g), 3u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Properties, ConnectedGraphs) {
  EXPECT_TRUE(is_connected(path_graph(10)));
  EXPECT_TRUE(is_connected(complete_graph(5)));
  EXPECT_TRUE(is_connected(star_graph(7)));
  EXPECT_TRUE(is_connected(Graph::from_edges(1, {})));
  EXPECT_TRUE(is_connected(Graph::from_edges(0, {})));
}

TEST(Properties, WeakConnectivityIgnoresDirection) {
  const auto g = Digraph::from_arcs(3, {{0, 1}, {2, 1}});
  EXPECT_TRUE(is_weakly_connected(g));
  const auto g2 = Digraph::from_arcs(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(is_weakly_connected(g2));
}

TEST(Properties, NumDangling) {
  const auto g = Digraph::from_arcs(4, {{0, 1}, {1, 2}, {3, 2}});
  EXPECT_EQ(num_dangling(g), 1u);  // only vertex 2
}

TEST(Properties, GnpAboveThresholdIsConnected) {
  // p = 3 ln n / n is well above the connectivity threshold.
  Rng rng(5);
  const std::size_t n = 300;
  const double p = 3.0 * std::log(static_cast<double>(n)) / n;
  EXPECT_TRUE(is_connected(gnp(n, p, rng)));
}

}  // namespace
}  // namespace km
