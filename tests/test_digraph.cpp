// Unit tests for the directed CSR graph (graph/digraph.hpp).
#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace km {
namespace {

TEST(Digraph, BasicArcs) {
  const auto g = Digraph::from_arcs(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(Digraph, InAndOutAdjacencyAgree) {
  const auto g = Digraph::from_arcs(
      5, {{0, 1}, {0, 2}, {1, 2}, {3, 2}, {2, 4}});
  // Every arc (u,v): v in out(u) and u in in(v).
  for (const auto& [u, v] : g.arc_list()) {
    const auto outs = g.out_neighbors(u);
    const auto ins = g.in_neighbors(v);
    EXPECT_TRUE(std::binary_search(outs.begin(), outs.end(), v));
    EXPECT_TRUE(std::binary_search(ins.begin(), ins.end(), u));
  }
  EXPECT_EQ(g.in_degree(2), 3u);
  EXPECT_EQ(g.out_degree(2), 1u);
}

TEST(Digraph, AntiparallelArcsAreDistinct) {
  const auto g = Digraph::from_arcs(2, {{0, 1}, {1, 0}});
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
}

TEST(Digraph, DropsDuplicatesAndSelfLoops) {
  const auto g = Digraph::from_arcs(3, {{0, 1}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(Digraph, OutOfRangeThrows) {
  EXPECT_THROW(Digraph::from_arcs(2, {{0, 2}}), std::out_of_range);
}

TEST(Digraph, DanglingVertex) {
  const auto g = Digraph::from_arcs(3, {{0, 2}, {1, 2}});
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_TRUE(g.out_neighbors(2).empty());
}

TEST(Digraph, FromUndirectedDoublesEdges) {
  const auto und = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto g = Digraph::from_undirected(und);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
  EXPECT_TRUE(g.has_arc(1, 2));
  EXPECT_TRUE(g.has_arc(2, 1));
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(g.out_degree(v), und.degree(v));
    EXPECT_EQ(g.in_degree(v), und.degree(v));
  }
}

TEST(Digraph, ArcListIsSorted) {
  const auto g = Digraph::from_arcs(4, {{3, 0}, {1, 2}, {0, 3}});
  const auto arcs = g.arc_list();
  EXPECT_TRUE(std::is_sorted(arcs.begin(), arcs.end()));
  EXPECT_EQ(arcs.size(), 3u);
}

}  // namespace
}  // namespace km
