// Tests for util/buffer_pool.hpp: recycling behaviour and the
// occupancy/overflow counters, including driving a pool past its three
// caps (256 buffers, 1 MiB per buffer, 8 MiB per thread) and asserting
// the eviction accounting.  Cap arithmetic needs a pool in a known-empty
// state, so cap tests run on a fresh thread (thread-local pools start
// empty); counters are global, and nothing else runs concurrently here.
#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/engine.hpp"

namespace km {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

// Runs `body` on a brand-new thread, whose thread-local pool starts
// empty, and joins it so all counter updates are visible.
template <typename F>
void on_fresh_thread(F&& body) {
  std::thread t(std::forward<F>(body));
  t.join();
}

TEST(BufferPool, MissRecycleHitRoundTrip) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> buf = acquire_buffer();  // fresh pool: a miss
    EXPECT_EQ(buf.capacity(), 0u);
    buf.reserve(512);
    recycle_buffer(std::move(buf));                 // adopted
    std::vector<std::byte> again = acquire_buffer();  // served from pool
    EXPECT_GE(again.capacity(), 512u);
    EXPECT_TRUE(again.empty()) << "recycled buffers come back cleared";
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.misses, 1u);
    EXPECT_EQ(d.recycled, 1u);
    EXPECT_EQ(d.hits, 1u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, EmptyBuffersAreNotAccounted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    recycle_buffer(std::vector<std::byte>{});  // no storage changes hands
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, OversizedBufferIsEvicted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> big;
    big.reserve(kMiB + 1);  // just past the 1 MiB per-buffer cap
    recycle_buffer(std::move(big));
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 1u);
    EXPECT_GE(d.evicted_bytes, kMiB + 1);
  });
}

TEST(BufferPool, TotalBytesCapEvictsOverflow) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    // Nine 1 MiB buffers against the 8 MiB per-thread cap: the first
    // eight are adopted, the ninth bounces.
    for (int i = 0; i < 9; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(kMiB);
      recycle_buffer(std::move(buf));
    }
    const auto after = buffer_pool_counters();
    const auto d = after.since(before);
    EXPECT_EQ(d.recycled, 8u);
    EXPECT_EQ(d.evicted, 1u);
    EXPECT_GE(d.evicted_bytes, kMiB);
    // Occupancy gauges see this thread's pool while it is alive.
    EXPECT_GE(after.pooled_bytes, before.pooled_bytes + 8 * kMiB);
    EXPECT_GE(after.pooled_buffers, before.pooled_buffers + 8);
  });
  // The fresh thread exited: its pool (and gauge contribution) is gone,
  // but its cumulative activity must have been folded into the totals.
  const auto total = buffer_pool_counters();
  EXPECT_GE(total.recycled, 8u);
}

TEST(BufferPool, BufferCountCapEvictsOverflow) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    // 300 tiny buffers against the 256-buffer cap.
    for (int i = 0; i < 300; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(64);
      recycle_buffer(std::move(buf));
    }
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 256u);
    EXPECT_EQ(d.evicted, 44u);
    EXPECT_EQ(d.evicted_bytes, 44u * 64u);
  });
}

TEST(BufferPool, EngineRunReportsPoolDelta) {
  // The engine snapshots the counters around a run and surfaces the
  // delta through Metrics: a message-heavy run must show pool traffic,
  // and the summary must carry the counters.
  Engine engine(4, {.bandwidth_bits = 1 << 14, .seed = 3});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (int step = 0; step < 8; ++step) {
      Writer w;
      for (int i = 0; i < 64; ++i) w.put_varint(static_cast<unsigned>(i));
      ctx.broadcast(1, w);
      ctx.exchange();
    }
  });
  EXPECT_GT(metrics.pool.hits + metrics.pool.misses, 0u);
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("pool_hits="), std::string::npos) << summary;
  EXPECT_NE(summary.find("pool_evicted_bytes="), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace km
