// Tests for util/buffer_pool.hpp: recycling behaviour and the
// occupancy/overflow counters, including driving a pool past its three
// caps (256 buffers, 1 MiB per buffer, 8 MiB per thread) and asserting
// the overflow accounting — local overflow parks on the shared shelf
// (the cross-thread return channel), oversized buffers are evicted.  Also covers the PayloadBuf *object* pool
// (sim/message.cpp, 1024 objects per thread) and its counters, driven
// through the PayloadRef lifecycle.  Cap arithmetic needs a pool in a
// known-empty state, so cap tests run on a fresh thread (thread-local
// pools start empty); counters are global, and nothing else runs
// concurrently here.
#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace km {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

// Runs `body` on a brand-new thread, whose thread-local pool starts
// empty, and joins it so all counter updates are visible.
template <typename F>
void on_fresh_thread(F&& body) {
  std::thread t(std::forward<F>(body));
  t.join();
}

TEST(BufferPool, MissRecycleHitRoundTrip) {
  on_fresh_thread([] {
    drain_buffer_shelf();  // a populated shelf would turn the miss below
                           // into a refill
    const auto before = buffer_pool_counters();
    std::vector<std::byte> buf = acquire_buffer();  // fresh pool: a miss
    EXPECT_EQ(buf.capacity(), 0u);
    buf.reserve(512);
    recycle_buffer(std::move(buf));                 // adopted
    std::vector<std::byte> again = acquire_buffer();  // served from pool
    EXPECT_GE(again.capacity(), 512u);
    EXPECT_TRUE(again.empty()) << "recycled buffers come back cleared";
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.misses, 1u);
    EXPECT_EQ(d.recycled, 1u);
    EXPECT_EQ(d.hits, 1u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, EmptyBuffersAreNotAccounted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    recycle_buffer(std::vector<std::byte>{});  // no storage changes hands
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, OversizedBufferIsEvicted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> big;
    big.reserve(kMiB + 1);  // just past the 1 MiB per-buffer cap
    recycle_buffer(std::move(big));
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 1u);
    EXPECT_GE(d.evicted_bytes, kMiB + 1);
  });
}

TEST(BufferPool, TotalBytesCapOverflowsToShelf) {
  on_fresh_thread([] {
    drain_buffer_shelf();
    const auto before = buffer_pool_counters();
    // Nine 1 MiB buffers against the 8 MiB per-thread cap: the first
    // eight are adopted locally, the ninth parks on the shared shelf.
    for (int i = 0; i < 9; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(kMiB);
      recycle_buffer(std::move(buf));
    }
    const auto after = buffer_pool_counters();
    const auto d = after.since(before);
    EXPECT_EQ(d.recycled, 8u);
    EXPECT_EQ(d.shelf_returns, 1u);
    EXPECT_EQ(d.evicted, 0u);
    // Occupancy gauges see this thread's pool while it is alive, and the
    // overflow buffer on the shelf.
    EXPECT_GE(after.pooled_bytes, before.pooled_bytes + 8 * kMiB);
    EXPECT_GE(after.pooled_buffers, before.pooled_buffers + 8);
    EXPECT_GE(after.shelf_bytes, kMiB);
  });
  // The fresh thread exited: its cumulative activity was folded into the
  // totals, and its pooled buffers were flushed to the shelf so their
  // capacities survive the thread.
  const auto total = buffer_pool_counters();
  EXPECT_GE(total.recycled, 8u);
  EXPECT_GE(total.shelf_bytes, 9 * kMiB);
}

TEST(BufferPool, BufferCountCapOverflowsToShelf) {
  on_fresh_thread([] {
    drain_buffer_shelf();
    const auto before = buffer_pool_counters();
    // 300 tiny buffers against the 256-buffer cap: the overflow parks on
    // the shelf instead of being freed.
    for (int i = 0; i < 300; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(64);
      recycle_buffer(std::move(buf));
    }
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 256u);
    EXPECT_EQ(d.shelf_returns, 44u);
    EXPECT_EQ(d.evicted, 0u);
    EXPECT_EQ(d.evicted_bytes, 0u);
  });
}

TEST(BufferPool, ShelfMovesCapacityAcrossThreads) {
  // The worker-pool pattern: one thread releases more buffers than its
  // local pool holds (the receiver), another thread acquires with a cold
  // local pool (the sender).  The shelf must hand the capacities across.
  drain_buffer_shelf();
  on_fresh_thread([] {
    for (int i = 0; i < 300; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(512);
      recycle_buffer(std::move(buf));
    }
  });  // thread exit also flushes the 256 locally pooled buffers
  const auto mid = buffer_pool_counters();
  EXPECT_GE(mid.shelf_buffers, 300u);
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> warm = acquire_buffer();
    EXPECT_GE(warm.capacity(), 512u) << "capacity must arrive via the shelf";
    EXPECT_TRUE(warm.empty());
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.shelf_refills, 1u);
    EXPECT_EQ(d.misses, 0u);
  });
  EXPECT_GT(drain_buffer_shelf(), 0u);
  EXPECT_EQ(buffer_pool_counters().shelf_buffers, 0u);
}

// ---------------------------------------------------------------------------
// PayloadBuf object pool (sim/message.cpp)
// ---------------------------------------------------------------------------

// Non-empty payload bytes, so the PayloadRef really acquires a buffer
// object (empty payloads are ownerless by design).
PayloadRef make_payload(std::size_t len = 1) {
  return PayloadRef(std::vector<std::byte>(len, std::byte{0x5a}));
}

TEST(BufferPool, PayloadPoolMissRecycleHitRoundTrip) {
  on_fresh_thread([] {
    const auto before = payload_pool_counters();
    {
      const PayloadRef ref = make_payload();  // fresh pool: a miss
      const auto mid = payload_pool_counters().since(before);
      EXPECT_EQ(mid.misses, 1u);
      EXPECT_EQ(mid.hits, 0u);
    }  // last ref dropped: the object is adopted back
    {
      const PayloadRef ref = make_payload();  // served from the free list
      const auto mid = payload_pool_counters().since(before);
      EXPECT_EQ(mid.hits, 1u);
      EXPECT_EQ(mid.misses, 1u);
    }
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 2u);
    EXPECT_EQ(d.dropped, 0u);
  });
}

TEST(BufferPool, PayloadPoolSharedRefsReleaseOneObject) {
  on_fresh_thread([] {
    const auto before = payload_pool_counters();
    {
      const PayloadRef a = make_payload(8);
      const PayloadRef b = a;           // shares the buffer object
      const PayloadRef c = a.slice(2, 4);
      EXPECT_TRUE(b.shares_buffer_with(c));
    }
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.misses, 1u) << "three refs, one underlying object";
    EXPECT_EQ(d.recycled, 1u) << "one object comes back when the last "
                                 "ref drops";
  });
}

TEST(BufferPool, PayloadPoolObjectCapDropsOverflow) {
  on_fresh_thread([] {
    constexpr std::size_t kCap = 1024;  // kMaxPooledBufs in message.cpp
    constexpr std::size_t kLive = kCap + 100;
    const auto before = payload_pool_counters();
    {
      std::vector<PayloadRef> live;
      live.reserve(kLive);
      for (std::size_t i = 0; i < kLive; ++i) live.push_back(make_payload());
    }  // 1124 objects die at once: 1024 adopted, 100 dropped
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.misses, kLive);
    EXPECT_EQ(d.recycled, kCap);
    EXPECT_EQ(d.dropped, kLive - kCap);
    // Occupancy gauge sees this thread's full free list while alive.
    EXPECT_GE(payload_pool_counters().pooled_objects,
              before.pooled_objects + kCap);
  });
  // The fresh thread exited: its gauge contribution is gone, but the
  // cumulative activity was folded into the totals at thread exit.
  EXPECT_GE(payload_pool_counters().recycled, 1024u);
}

TEST(BufferPool, EngineRunReportsPoolDelta) {
  // The engine snapshots the counters around a run and surfaces the
  // delta through Metrics: a message-heavy run must show pool traffic,
  // and the summary must carry the counters.
  Engine engine(4, {.bandwidth_bits = 1 << 14, .seed = 3});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (int step = 0; step < 8; ++step) {
      Writer w;
      for (int i = 0; i < 64; ++i) w.put_varint(static_cast<unsigned>(i));
      ctx.broadcast(1, w);
      ctx.exchange();
    }
  });
  EXPECT_GT(metrics.pool.hits + metrics.pool.misses, 0u);
  EXPECT_GT(metrics.payload_pool.hits + metrics.payload_pool.misses, 0u)
      << "a broadcast-heavy run must create payload objects";
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("pool_hits="), std::string::npos) << summary;
  EXPECT_NE(summary.find("pool_evicted_bytes="), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("payload_pool_hits="), std::string::npos) << summary;
  EXPECT_NE(summary.find("payload_pool_dropped="), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace km
