// Tests for util/buffer_pool.hpp: recycling behaviour and the
// occupancy/overflow counters, including driving a pool past its three
// caps (256 buffers, 1 MiB per buffer, 8 MiB per thread) and asserting
// the eviction accounting.  Also covers the PayloadBuf *object* pool
// (sim/message.cpp, 1024 objects per thread) and its counters, driven
// through the PayloadRef lifecycle.  Cap arithmetic needs a pool in a
// known-empty state, so cap tests run on a fresh thread (thread-local
// pools start empty); counters are global, and nothing else runs
// concurrently here.
#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace km {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

// Runs `body` on a brand-new thread, whose thread-local pool starts
// empty, and joins it so all counter updates are visible.
template <typename F>
void on_fresh_thread(F&& body) {
  std::thread t(std::forward<F>(body));
  t.join();
}

TEST(BufferPool, MissRecycleHitRoundTrip) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> buf = acquire_buffer();  // fresh pool: a miss
    EXPECT_EQ(buf.capacity(), 0u);
    buf.reserve(512);
    recycle_buffer(std::move(buf));                 // adopted
    std::vector<std::byte> again = acquire_buffer();  // served from pool
    EXPECT_GE(again.capacity(), 512u);
    EXPECT_TRUE(again.empty()) << "recycled buffers come back cleared";
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.misses, 1u);
    EXPECT_EQ(d.recycled, 1u);
    EXPECT_EQ(d.hits, 1u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, EmptyBuffersAreNotAccounted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    recycle_buffer(std::vector<std::byte>{});  // no storage changes hands
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 0u);
  });
}

TEST(BufferPool, OversizedBufferIsEvicted) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    std::vector<std::byte> big;
    big.reserve(kMiB + 1);  // just past the 1 MiB per-buffer cap
    recycle_buffer(std::move(big));
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 0u);
    EXPECT_EQ(d.evicted, 1u);
    EXPECT_GE(d.evicted_bytes, kMiB + 1);
  });
}

TEST(BufferPool, TotalBytesCapEvictsOverflow) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    // Nine 1 MiB buffers against the 8 MiB per-thread cap: the first
    // eight are adopted, the ninth bounces.
    for (int i = 0; i < 9; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(kMiB);
      recycle_buffer(std::move(buf));
    }
    const auto after = buffer_pool_counters();
    const auto d = after.since(before);
    EXPECT_EQ(d.recycled, 8u);
    EXPECT_EQ(d.evicted, 1u);
    EXPECT_GE(d.evicted_bytes, kMiB);
    // Occupancy gauges see this thread's pool while it is alive.
    EXPECT_GE(after.pooled_bytes, before.pooled_bytes + 8 * kMiB);
    EXPECT_GE(after.pooled_buffers, before.pooled_buffers + 8);
  });
  // The fresh thread exited: its pool (and gauge contribution) is gone,
  // but its cumulative activity must have been folded into the totals.
  const auto total = buffer_pool_counters();
  EXPECT_GE(total.recycled, 8u);
}

TEST(BufferPool, BufferCountCapEvictsOverflow) {
  on_fresh_thread([] {
    const auto before = buffer_pool_counters();
    // 300 tiny buffers against the 256-buffer cap.
    for (int i = 0; i < 300; ++i) {
      std::vector<std::byte> buf;
      buf.reserve(64);
      recycle_buffer(std::move(buf));
    }
    const auto d = buffer_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 256u);
    EXPECT_EQ(d.evicted, 44u);
    EXPECT_EQ(d.evicted_bytes, 44u * 64u);
  });
}

// ---------------------------------------------------------------------------
// PayloadBuf object pool (sim/message.cpp)
// ---------------------------------------------------------------------------

// Non-empty payload bytes, so the PayloadRef really acquires a buffer
// object (empty payloads are ownerless by design).
PayloadRef make_payload(std::size_t len = 1) {
  return PayloadRef(std::vector<std::byte>(len, std::byte{0x5a}));
}

TEST(BufferPool, PayloadPoolMissRecycleHitRoundTrip) {
  on_fresh_thread([] {
    const auto before = payload_pool_counters();
    {
      const PayloadRef ref = make_payload();  // fresh pool: a miss
      const auto mid = payload_pool_counters().since(before);
      EXPECT_EQ(mid.misses, 1u);
      EXPECT_EQ(mid.hits, 0u);
    }  // last ref dropped: the object is adopted back
    {
      const PayloadRef ref = make_payload();  // served from the free list
      const auto mid = payload_pool_counters().since(before);
      EXPECT_EQ(mid.hits, 1u);
      EXPECT_EQ(mid.misses, 1u);
    }
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.recycled, 2u);
    EXPECT_EQ(d.dropped, 0u);
  });
}

TEST(BufferPool, PayloadPoolSharedRefsReleaseOneObject) {
  on_fresh_thread([] {
    const auto before = payload_pool_counters();
    {
      const PayloadRef a = make_payload(8);
      const PayloadRef b = a;           // shares the buffer object
      const PayloadRef c = a.slice(2, 4);
      EXPECT_TRUE(b.shares_buffer_with(c));
    }
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.misses, 1u) << "three refs, one underlying object";
    EXPECT_EQ(d.recycled, 1u) << "one object comes back when the last "
                                 "ref drops";
  });
}

TEST(BufferPool, PayloadPoolObjectCapDropsOverflow) {
  on_fresh_thread([] {
    constexpr std::size_t kCap = 1024;  // kMaxPooledBufs in message.cpp
    constexpr std::size_t kLive = kCap + 100;
    const auto before = payload_pool_counters();
    {
      std::vector<PayloadRef> live;
      live.reserve(kLive);
      for (std::size_t i = 0; i < kLive; ++i) live.push_back(make_payload());
    }  // 1124 objects die at once: 1024 adopted, 100 dropped
    const auto d = payload_pool_counters().since(before);
    EXPECT_EQ(d.misses, kLive);
    EXPECT_EQ(d.recycled, kCap);
    EXPECT_EQ(d.dropped, kLive - kCap);
    // Occupancy gauge sees this thread's full free list while alive.
    EXPECT_GE(payload_pool_counters().pooled_objects,
              before.pooled_objects + kCap);
  });
  // The fresh thread exited: its gauge contribution is gone, but the
  // cumulative activity was folded into the totals at thread exit.
  EXPECT_GE(payload_pool_counters().recycled, 1024u);
}

TEST(BufferPool, EngineRunReportsPoolDelta) {
  // The engine snapshots the counters around a run and surfaces the
  // delta through Metrics: a message-heavy run must show pool traffic,
  // and the summary must carry the counters.
  Engine engine(4, {.bandwidth_bits = 1 << 14, .seed = 3});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    for (int step = 0; step < 8; ++step) {
      Writer w;
      for (int i = 0; i < 64; ++i) w.put_varint(static_cast<unsigned>(i));
      ctx.broadcast(1, w);
      ctx.exchange();
    }
  });
  EXPECT_GT(metrics.pool.hits + metrics.pool.misses, 0u);
  EXPECT_GT(metrics.payload_pool.hits + metrics.payload_pool.misses, 0u)
      << "a broadcast-heavy run must create payload objects";
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("pool_hits="), std::string::npos) << summary;
  EXPECT_NE(summary.find("pool_evicted_bytes="), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("payload_pool_hits="), std::string::npos) << summary;
  EXPECT_NE(summary.find("payload_pool_dropped="), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace km
