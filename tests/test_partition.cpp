// Tests for the input partitions (sim/partition.hpp): RVP balance
// (Section 1.1: every machine gets Theta~(n/k) vertices whp), hash
// determinism, the congested-clique identity partition and REP.
#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace km {
namespace {

TEST(VertexPartition, RandomCoversAllVertices) {
  Rng rng(1);
  const auto p = VertexPartition::random(1000, 8, rng);
  EXPECT_EQ(p.n(), 1000u);
  EXPECT_EQ(p.k(), 8u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    total += p.load(i);
    for (Vertex v : p.owned(i)) EXPECT_EQ(p.home(v), i);
  }
  EXPECT_EQ(total, 1000u);
}

TEST(VertexPartition, OwnedListsAreSortedAndDisjoint) {
  Rng rng(2);
  const auto p = VertexPartition::random(500, 7, rng);
  std::vector<bool> seen(500, false);
  for (std::size_t i = 0; i < 7; ++i) {
    const auto& o = p.owned(i);
    EXPECT_TRUE(std::is_sorted(o.begin(), o.end()));
    for (Vertex v : o) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

class RvpBalanceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RvpBalanceSweep, LoadIsBalancedWhp) {
  // RVP gives each machine Theta~(n/k) vertices whp; with n/k >= 64 a
  // 2x imbalance bound is extremely conservative (Chernoff).
  const auto [n, k] = GetParam();
  Rng rng(n * 31 + k);
  const auto p = VertexPartition::random(n, k, rng);
  EXPECT_LT(p.imbalance(), 2.0) << "n=" << n << " k=" << k;
  EXPECT_GT(p.imbalance(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RvpBalanceSweep,
    ::testing::Values(std::make_tuple(1024, 4), std::make_tuple(4096, 16),
                      std::make_tuple(10000, 8), std::make_tuple(20000, 32),
                      std::make_tuple(8192, 2)));

TEST(VertexPartition, HashIsDeterministicAndBalanced) {
  const auto a = VertexPartition::by_hash(5000, 16, 12345);
  const auto b = VertexPartition::by_hash(5000, 16, 12345);
  for (Vertex v = 0; v < 5000; ++v) EXPECT_EQ(a.home(v), b.home(v));
  EXPECT_LT(a.imbalance(), 1.5);
  const auto c = VertexPartition::by_hash(5000, 16, 54321);
  std::size_t same = 0;
  for (Vertex v = 0; v < 5000; ++v) same += (a.home(v) == c.home(v));
  EXPECT_LT(same, 1000u);  // different seeds give different placements
}

TEST(VertexPartition, RoundRobinIsPerfectlyBalanced) {
  const auto p = VertexPartition::round_robin(100, 10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(p.load(i), 10u);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
  EXPECT_EQ(p.home(37), 7u);
}

TEST(VertexPartition, IdentityIsCongestedClique) {
  const auto p = VertexPartition::identity(64);
  EXPECT_EQ(p.k(), 64u);
  for (Vertex v = 0; v < 64; ++v) {
    EXPECT_EQ(p.home(v), v);
    ASSERT_EQ(p.owned(v).size(), 1u);
    EXPECT_EQ(p.owned(v)[0], v);
  }
}

TEST(VertexPartition, ZeroMachinesThrows) {
  Rng rng(3);
  EXPECT_THROW(VertexPartition::random(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(VertexPartition::round_robin(10, 0), std::invalid_argument);
}

TEST(VertexPartition, MoreMachinesThanVertices) {
  Rng rng(4);
  const auto p = VertexPartition::random(5, 20, rng);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 20; ++i) total += p.load(i);
  EXPECT_EQ(total, 5u);
}

TEST(EdgePartition, RandomCoversAllEdges) {
  Rng rng(5);
  const auto p = EdgePartition::random(999, 6, rng);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    total += p.owned(i).size();
    for (auto e : p.owned(i)) EXPECT_EQ(p.home(e), i);
  }
  EXPECT_EQ(total, 999u);
  EXPECT_LT(static_cast<double>(p.max_load()), 2.0 * 999.0 / 6.0);
}

TEST(EdgePartition, HashDeterministic) {
  const auto a = EdgePartition::by_hash(500, 4, 777);
  const auto b = EdgePartition::by_hash(500, 4, 777);
  for (std::size_t e = 0; e < 500; ++e) EXPECT_EQ(a.home(e), b.home(e));
}

}  // namespace
}  // namespace km
