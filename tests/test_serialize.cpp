// Unit tests for bit-accurate serialization (util/serialize.hpp).
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace km {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_double(3.14159);
  const auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get_double(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,      1,       127,        128,
                                  16383,  16384,   (1ULL << 32) - 1,
                                  1ULL << 32, std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (auto v : values) w.put_varint(v);
  const auto buf = w.take();
  Reader r(buf);
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintSizesAreMinimal) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
  // Writer agrees with varint_size.
  for (std::uint64_t v : {0ULL, 127ULL, 128ULL, 99999ULL, 1ULL << 50}) {
    Writer w;
    w.put_varint(v);
    EXPECT_EQ(w.size_bytes(), varint_size(v));
  }
}

TEST(Serialize, SignedVarintRoundTrip) {
  const std::int64_t values[] = {0,  -1, 1,  -2,  2,
                                 -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (auto v : values) w.put_varint_signed(v);
  const auto buf = w.take();
  Reader r(buf);
  for (auto v : values) EXPECT_EQ(r.get_varint_signed(), v);
}

TEST(Serialize, SmallSignedValuesAreOneByte) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 63LL, -64LL}) {
    Writer w;
    w.put_varint_signed(v);
    EXPECT_EQ(w.size_bytes(), 1u) << v;
  }
}

TEST(Serialize, UnderrunThrows) {
  Writer w;
  w.put_u16(7);
  const auto buf = w.take();
  Reader r(buf);
  EXPECT_NO_THROW(r.get_u8());
  EXPECT_NO_THROW(r.get_u8());
  EXPECT_THROW(r.get_u8(), SerializeError);
}

TEST(Serialize, VarintUnderrunThrows) {
  // A continuation bit with no following byte.
  std::vector<std::byte> buf{std::byte{0x80}};
  Reader r(buf);
  EXPECT_THROW(r.get_varint(), SerializeError);
}

TEST(Serialize, MalformedVarintOverflowThrows) {
  // 11 continuation bytes exceed 64 bits.
  std::vector<std::byte> buf(11, std::byte{0x80});
  buf.push_back(std::byte{0x01});
  Reader r(buf);
  EXPECT_THROW(r.get_varint(), SerializeError);
}

TEST(Serialize, PutBytesAppends) {
  Writer inner;
  inner.put_u32(42);
  Writer outer;
  outer.put_u8(1);
  outer.put_bytes(inner.view());
  const auto buf = outer.take();
  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 1);
  EXPECT_EQ(r.get_u32(), 42u);
}

TEST(Serialize, TakeResetsWriter) {
  Writer w;
  w.put_u64(1);
  EXPECT_EQ(w.size_bytes(), 8u);
  (void)w.take();
  EXPECT_EQ(w.size_bytes(), 0u);
  w.put_u8(2);
  EXPECT_EQ(w.size_bytes(), 1u);
}

TEST(Serialize, SizeBitsMatchesBytes) {
  Writer w;
  w.put_u32(5);
  EXPECT_EQ(w.size_bits(), 32u);
}

TEST(Serialize, RemainingTracksPosition) {
  Writer w;
  w.put_u32(1);
  w.put_u32(2);
  const auto buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.get_u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.get_u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace km
