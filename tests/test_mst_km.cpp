// Tests for distributed Boruvka MST and connected components
// (core/mst.hpp): exact agreement with the Kruskal reference / BFS
// components across topologies, machine counts and seeds — including
// the paper's MST lower-bound input family (complete graphs with random
// weights, Section 1.3).
#include "core/mst.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace km {
namespace {

DistributedMstResult run_mst(const WeightedGraph& g, std::size_t k,
                             std::uint64_t seed) {
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(
                        std::max<std::size_t>(g.num_vertices(), 2)),
                    .seed = seed});
  Rng prng(seed ^ 0xAAAA);
  const auto part = VertexPartition::random(g.num_vertices(), k, prng);
  return distributed_mst(g, part, engine);
}

void expect_matches_kruskal(const WeightedGraph& g, std::size_t k,
                            std::uint64_t seed) {
  const auto expected = kruskal_mst(g);
  const auto got = run_mst(g, k, seed);
  EXPECT_EQ(got.edges, expected.edges);
  EXPECT_EQ(got.total_weight, expected.total_weight);
  EXPECT_EQ(got.metrics.dropped_messages, 0u);
}

TEST(MstKm, KnownSmallInstance) {
  const auto g =
      WeightedGraph::from_edges(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 9}});
  expect_matches_kruskal(g, 2, 1);
}

TEST(MstKm, PathAndCycleAndStar) {
  Rng rng(2);
  expect_matches_kruskal(
      WeightedGraph::randomize_weights(path_graph(50), 100, rng), 4, 3);
  expect_matches_kruskal(
      WeightedGraph::randomize_weights(cycle_graph(60), 100, rng), 4, 4);
  expect_matches_kruskal(
      WeightedGraph::randomize_weights(star_graph(40), 100, rng), 4, 5);
}

TEST(MstKm, CompleteGraphWithRandomWeights) {
  // The paper's lower-bound family for MST (Section 1.3).
  Rng rng(6);
  const auto g = WeightedGraph::complete_random(60, 1000, rng);
  expect_matches_kruskal(g, 8, 7);
}

TEST(MstKm, DisconnectedGraphGivesForest) {
  // Two components plus isolated vertices.
  Rng rng(8);
  std::vector<WeightedEdge> edges;
  for (const auto& [u, v] : gnp(30, 0.3, rng).edge_list()) {
    edges.push_back({u, v, 1 + rng.below(50)});
  }
  for (const auto& [u, v] : gnp(30, 0.3, rng).edge_list()) {
    edges.push_back({static_cast<Vertex>(u + 30),
                     static_cast<Vertex>(v + 30), 1 + rng.below(50)});
  }
  const auto g = WeightedGraph::from_edges(65, std::move(edges));  // 60..64 isolated
  expect_matches_kruskal(g, 4, 9);
}

TEST(MstKm, HeavyDuplicateWeights) {
  // Ties everywhere: the unique tie-break order must keep both sides
  // consistent (duplicate-MOE deduplication is exercised heavily).
  Rng rng(10);
  const auto g =
      WeightedGraph::randomize_weights(gnp(80, 0.2, rng), 2, rng);
  expect_matches_kruskal(g, 8, 11);
}

class MstSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MstSweep, MatchesKruskalOnGnp) {
  const auto [k, seed] = GetParam();
  Rng rng(seed);
  const auto g =
      WeightedGraph::randomize_weights(gnp(100, 0.1, rng), 500, rng);
  expect_matches_kruskal(g, k, seed * 31 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeed, MstSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 3)));

TEST(MstKm, FragmentLabelsAreConsistent) {
  // After termination every vertex's fragment must be its component's
  // unique root.
  Rng rng(12);
  const auto base = gnp(70, 0.08, rng);
  const auto g = WeightedGraph::randomize_weights(base, 100, rng);
  const auto res = run_mst(g, 4, 13);
  const auto comps = connected_components(base);
  std::map<std::uint32_t, std::uint32_t> frag_of_comp;
  for (Vertex v = 0; v < base.num_vertices(); ++v) {
    const auto [it, inserted] =
        frag_of_comp.emplace(comps[v], res.fragment_of[v]);
    EXPECT_EQ(it->second, res.fragment_of[v]) << "vertex " << v;
  }
}

TEST(MstKm, PhasesAreLogarithmic) {
  Rng rng(14);
  const auto g = WeightedGraph::complete_random(128, 10000, rng);
  const auto res = run_mst(g, 8, 15);
  EXPECT_LE(res.phases, 9u);  // log2(128) + safety margin
  EXPECT_GE(res.phases, 2u);
}

TEST(MstKm, DeterministicForFixedSeeds) {
  Rng rng(16);
  const auto g =
      WeightedGraph::randomize_weights(gnp(60, 0.15, rng), 100, rng);
  const auto a = run_mst(g, 4, 17);
  const auto b = run_mst(g, 4, 17);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(MstKm, MismatchedPartitionThrows) {
  Rng rng(18);
  const auto g = WeightedGraph::complete_random(20, 10, rng);
  Engine engine(4, {.bandwidth_bits = 256, .seed = 1});
  Rng prng(2);
  const auto wrong = VertexPartition::random(10, 4, prng);
  EXPECT_THROW(distributed_mst(g, wrong, engine), std::invalid_argument);
}

// ---------------- Connected components ----------------

DistributedComponentsResult run_cc(const Graph& g, std::size_t k,
                                   std::uint64_t seed) {
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(
                        std::max<std::size_t>(g.num_vertices(), 2)),
                    .seed = seed});
  Rng prng(seed ^ 0xBBBB);
  const auto part = VertexPartition::random(g.num_vertices(), k, prng);
  return distributed_components(g, part, engine);
}

void expect_matches_bfs(const Graph& g, std::size_t k, std::uint64_t seed) {
  const auto res = run_cc(g, k, seed);
  const auto ref = connected_components(g);
  EXPECT_EQ(res.num_components, num_connected_components(g));
  // Labels must induce the same partition as BFS labels.
  std::map<std::uint32_t, std::uint32_t> fwd, bwd;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto [it1, i1] = fwd.emplace(ref[v], res.labels[v]);
    EXPECT_EQ(it1->second, res.labels[v]) << v;
    const auto [it2, i2] = bwd.emplace(res.labels[v], ref[v]);
    EXPECT_EQ(it2->second, ref[v]) << v;
  }
}

TEST(ComponentsKm, ConnectedGraphIsOneComponent) {
  Rng rng(20);
  expect_matches_bfs(gnp(100, 0.1, rng), 8, 21);
}

TEST(ComponentsKm, ManySmallComponents) {
  // A disjoint union of paths and isolated vertices.
  std::vector<Edge> edges;
  for (Vertex base = 0; base < 60; base += 5) {
    for (Vertex i = 0; i + 1 < 4; ++i) {
      edges.emplace_back(base + i, base + i + 1);  // path of 4, 1 isolated
    }
  }
  const auto g = Graph::from_edges(60, std::move(edges));
  expect_matches_bfs(g, 4, 22);
}

class ComponentsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComponentsSweep, SubcriticalGnpMatchesBfs) {
  // p below the connectivity threshold: many components of varied size.
  Rng rng(23 + GetParam());
  const auto g = gnp(200, 0.008, rng);
  expect_matches_bfs(g, GetParam(), 24);
}

INSTANTIATE_TEST_SUITE_P(Machines, ComponentsSweep,
                         ::testing::Values(2, 4, 8, 16));

TEST(ComponentsKm, EdgelessGraph) {
  const auto g = Graph::from_edges(10, {});
  const auto res = run_cc(g, 4, 25);
  EXPECT_EQ(res.num_components, 10u);
}

}  // namespace
}  // namespace km
