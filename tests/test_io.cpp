// Tests for edge-list IO (graph/io.hpp).
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace km {
namespace {

TEST(Io, ReadSimpleEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "0 1  # trailing comment\n"
      "\n"
      "1 2\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, NonContiguousIdsAreCompacted) {
  std::istringstream in("100 200\n200 300\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, RoundTripUndirected) {
  Rng rng(9);
  const auto g = gnp(60, 0.2, rng);
  std::ostringstream out;
  write_edge_list(out, g);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  // IDs are written canonically so the edge sets agree exactly.
  EXPECT_EQ(g2.edge_list(), g.edge_list());
}

TEST(Io, ReadArcListPreservesDirection) {
  std::istringstream in("0 1\n2 1\n");
  const auto g = read_arc_list(in);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_TRUE(g.has_arc(2, 1));
}

TEST(Io, RoundTripDirected) {
  Rng rng(10);
  const auto g = gnp_directed(40, 0.15, rng);
  std::ostringstream out;
  write_arc_list(out, g);
  std::istringstream in(out.str());
  const auto g2 = read_arc_list(in);
  EXPECT_EQ(g2.arc_list(), g.arc_list());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/file.txt"),
               std::runtime_error);
}

TEST(Io, EmptyInput) {
  std::istringstream in("");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// ---- Strict line grammar: every parse failure names source, 1-based
// line, and the offending token. ----

// Captures the runtime_error message so each test can assert on its parts.
std::string parse_error_of(const std::string& text,
                           const std::string& source = "<stream>") {
  std::istringstream in(text);
  try {
    read_edge_list(in, source);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected read_edge_list to throw for: " << text;
  return {};
}

TEST(Io, BadTokenReportsLineAndToken) {
  const std::string msg = parse_error_of("0 1\nfoo 2\n");
  EXPECT_NE(msg.find("<stream>:2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'foo'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad vertex id"), std::string::npos) << msg;
}

TEST(Io, MissingSecondIdReportsLine) {
  // Blank and comment-only lines must not advance the edge count but
  // MUST advance the line number: the bare "7" sits on line 4.
  const std::string msg = parse_error_of("# header\n0 1\n\n7\n");
  EXPECT_NE(msg.find("<stream>:4:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing second vertex id"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'7'"), std::string::npos) << msg;
}

TEST(Io, TrailingJunkReportsOffendingToken) {
  const std::string msg = parse_error_of("0 1 2\n");
  EXPECT_NE(msg.find("<stream>:1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unexpected trailing token '2'"), std::string::npos)
      << msg;
}

TEST(Io, NegativeIdIsRejected) {
  const std::string msg = parse_error_of("0 -3\n");
  EXPECT_NE(msg.find("bad vertex id '-3'"), std::string::npos) << msg;
}

TEST(Io, SourceNameAppearsInMessage) {
  const std::string msg = parse_error_of("x y\n", "graphs/web.txt");
  EXPECT_NE(msg.find("graphs/web.txt:1:"), std::string::npos) << msg;
}

TEST(Io, ArcListSharesStrictGrammar) {
  std::istringstream in("0 1\n1 oops\n");
  try {
    read_arc_list(in);
    ADD_FAILURE() << "expected read_arc_list to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<stream>:2:"), std::string::npos)
        << e.what();
  }
}

TEST(Io, TrailingCommentAfterEdgeStillAccepted) {
  std::istringstream in("0 1 # fine\n1 2#also fine\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace km
