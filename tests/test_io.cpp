// Tests for edge-list IO (graph/io.hpp).
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace km {
namespace {

TEST(Io, ReadSimpleEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "0 1  # trailing comment\n"
      "\n"
      "1 2\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, NonContiguousIdsAreCompacted) {
  std::istringstream in("100 200\n200 300\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, RoundTripUndirected) {
  Rng rng(9);
  const auto g = gnp(60, 0.2, rng);
  std::ostringstream out;
  write_edge_list(out, g);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  // IDs are written canonically so the edge sets agree exactly.
  EXPECT_EQ(g2.edge_list(), g.edge_list());
}

TEST(Io, ReadArcListPreservesDirection) {
  std::istringstream in("0 1\n2 1\n");
  const auto g = read_arc_list(in);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_TRUE(g.has_arc(2, 1));
}

TEST(Io, RoundTripDirected) {
  Rng rng(10);
  const auto g = gnp_directed(40, 0.15, rng);
  std::ostringstream out;
  write_arc_list(out, g);
  std::istringstream in(out.str());
  const auto g2 = read_arc_list(in);
  EXPECT_EQ(g2.arc_list(), g.arc_list());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/file.txt"),
               std::runtime_error);
}

TEST(Io, EmptyInput) {
  std::istringstream in("");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace km
