// Property/fuzz tests for the serialization layer: random write programs
// must round-trip exactly, and arbitrary byte strings must never crash
// the Reader (they either decode or throw SerializeError).
#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace km {
namespace {

using Value = std::variant<std::uint8_t, std::uint16_t, std::uint32_t,
                           std::uint64_t, std::int64_t, double>;

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzz, RandomProgramsRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t ops = 1 + rng.below(30);
    std::vector<std::pair<int, Value>> program;
    Writer w;
    for (std::size_t i = 0; i < ops; ++i) {
      const int kind = static_cast<int>(rng.below(7));
      switch (kind) {
        case 0: {
          const auto v = static_cast<std::uint8_t>(rng.next());
          w.put_u8(v);
          program.emplace_back(kind, v);
          break;
        }
        case 1: {
          const auto v = static_cast<std::uint16_t>(rng.next());
          w.put_u16(v);
          program.emplace_back(kind, v);
          break;
        }
        case 2: {
          const auto v = static_cast<std::uint32_t>(rng.next());
          w.put_u32(v);
          program.emplace_back(kind, v);
          break;
        }
        case 3: {
          const auto v = rng.next();
          w.put_u64(v);
          program.emplace_back(kind, v);
          break;
        }
        case 4: {
          // Bias varints toward small values (the common case).
          const auto v = rng.bernoulli(0.5) ? rng.below(256) : rng.next();
          w.put_varint(v);
          program.emplace_back(kind, v);
          break;
        }
        case 5: {
          const auto v = static_cast<std::int64_t>(rng.next());
          w.put_varint_signed(v);
          program.emplace_back(kind, Value{v});
          break;
        }
        default: {
          const double v =
              static_cast<double>(rng.range(-1000000, 1000000)) / 1000.0;
          w.put_double(v);
          program.emplace_back(kind, v);
          break;
        }
      }
    }
    const auto buf = w.take();
    Reader r(buf);
    for (const auto& [kind, expected] : program) {
      switch (kind) {
        case 0:
          EXPECT_EQ(r.get_u8(), std::get<std::uint8_t>(expected));
          break;
        case 1:
          EXPECT_EQ(r.get_u16(), std::get<std::uint16_t>(expected));
          break;
        case 2:
          EXPECT_EQ(r.get_u32(), std::get<std::uint32_t>(expected));
          break;
        case 3:
          EXPECT_EQ(r.get_u64(), std::get<std::uint64_t>(expected));
          break;
        case 4:
          EXPECT_EQ(r.get_varint(), std::get<std::uint64_t>(expected));
          break;
        case 5:
          EXPECT_EQ(r.get_varint_signed(), std::get<std::int64_t>(expected));
          break;
        default:
          EXPECT_DOUBLE_EQ(r.get_double(), std::get<double>(expected));
          break;
      }
    }
    EXPECT_TRUE(r.done());
  }
}

TEST_P(RoundTripFuzz, ArbitraryBytesNeverCrashReader) {
  Rng rng(GetParam() ^ 0xF0F0);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> junk(rng.below(40));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next());
    Reader r(junk);
    // Drain the buffer with random decode calls; every call either
    // succeeds or throws SerializeError — no crashes, no infinite loops.
    try {
      while (!r.done()) {
        switch (rng.below(6)) {
          case 0: (void)r.get_u8(); break;
          case 1: (void)r.get_u16(); break;
          case 2: (void)r.get_u32(); break;
          case 3: (void)r.get_u64(); break;
          case 4: (void)r.get_varint(); break;
          default: (void)r.get_varint_signed(); break;
        }
      }
    } catch (const SerializeError&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(SerializeProperty, VarintIsPrefixFree) {
  // Decoding a varint consumes exactly its own bytes: concatenations
  // are unambiguous.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.bernoulli(0.5) ? rng.below(300) : rng.next();
    const std::uint64_t b = rng.bernoulli(0.5) ? rng.below(300) : rng.next();
    Writer w;
    w.put_varint(a);
    w.put_varint(b);
    const auto buf = w.take();
    EXPECT_EQ(buf.size(), varint_size(a) + varint_size(b));
    Reader r(buf);
    EXPECT_EQ(r.get_varint(), a);
    EXPECT_EQ(r.get_varint(), b);
    EXPECT_TRUE(r.done());
  }
}

TEST(SerializeProperty, VarintSizeIsMonotone) {
  std::size_t prev = 1;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::size_t size = varint_size(1ULL << shift);
    EXPECT_GE(size, prev);
    prev = size;
  }
}

}  // namespace
}  // namespace km
