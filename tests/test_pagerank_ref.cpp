// Tests for the sequential PageRank references (graph/pagerank_ref.hpp).
#include "graph/pagerank_ref.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace km {
namespace {

TEST(PageRankRef, DirectedCycleIsUniform) {
  // On a directed cycle every vertex is symmetric.
  std::vector<Edge> arcs;
  const std::size_t n = 10;
  for (std::size_t i = 0; i < n; ++i) {
    arcs.emplace_back(static_cast<Vertex>(i), static_cast<Vertex>((i + 1) % n));
  }
  const auto g = Digraph::from_arcs(n, std::move(arcs));
  const auto pi = expected_visit_pagerank(g, {.eps = 0.2});
  for (std::size_t v = 1; v < n; ++v) EXPECT_NEAR(pi[v], pi[0], 1e-10);
  // phi = 1/eps on a cycle (every token visits until termination):
  // pi_v = eps * (1/eps) / n = 1/n.
  EXPECT_NEAR(pi[0], 1.0 / static_cast<double>(n), 1e-9);
}

TEST(PageRankRef, ExpectedVisitsSumWithNoDangling) {
  // Without dangling vertices total expected visits per start token are
  // 1/eps, so sum_v pi_v = 1.
  Rng rng(3);
  auto und = gnp(80, 0.2, rng);
  const auto g = Digraph::from_undirected(und);
  const auto pi = expected_visit_pagerank(g, {.eps = 0.15});
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankRef, DanglingReducesTotalMass) {
  // A path u -> v: tokens at v terminate, so total < 1.
  const auto g = Digraph::from_arcs(2, {{0, 1}});
  const auto pi = expected_visit_pagerank(g, {.eps = 0.2});
  EXPECT_LT(pi[0] + pi[1], 1.0);
  // phi_0 = 1, phi_1 = 1 + 0.8 => pi = eps*phi/n.
  EXPECT_NEAR(pi[0], 0.2 * 1.0 / 2.0, 1e-10);
  EXPECT_NEAR(pi[1], 0.2 * 1.8 / 2.0, 1e-10);
}

TEST(PageRankRef, StarCenterDominates) {
  const auto und = star_graph(50);
  const auto g = Digraph::from_undirected(und);
  const auto pi = expected_visit_pagerank(g, {.eps = 0.2});
  for (Vertex v = 1; v < 50; ++v) EXPECT_GT(pi[0], pi[v]);
}

TEST(PageRankRef, PowerIterationIsDistribution) {
  Rng rng(4);
  const auto g = gnp_directed(100, 0.05, rng);
  const auto pi = power_iteration_pagerank(g, {.eps = 0.15});
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
  for (double x : pi) EXPECT_GT(x, 0.0);
}

TEST(PageRankRef, PowerIterationMatchesExpectedVisitsWithoutDangling) {
  // With no dangling vertices the two formulations coincide.
  Rng rng(5);
  const auto und = gnp(60, 0.3, rng);
  const auto g = Digraph::from_undirected(und);
  const auto a = expected_visit_pagerank(g, {.eps = 0.2});
  const auto b = power_iteration_pagerank(g, {.eps = 0.2});
  EXPECT_LT(l1_distance(a, b), 1e-6);
}

TEST(PageRankRef, HigherInDegreeHigherRank) {
  // 0 and 1 both point at 3; only 0 points at 2. pi_3 > pi_2.
  const auto g = Digraph::from_arcs(4, {{0, 3}, {1, 3}, {0, 2}, {2, 0},
                                        {3, 0}});
  const auto pi = expected_visit_pagerank(g, {.eps = 0.2});
  EXPECT_GT(pi[3], pi[2]);
}

TEST(PageRankRef, EmptyGraph) {
  const Digraph g;
  EXPECT_TRUE(expected_visit_pagerank(g).empty());
  EXPECT_TRUE(power_iteration_pagerank(g).empty());
}

TEST(PageRankRef, L1DistanceBasics) {
  EXPECT_DOUBLE_EQ(l1_distance({1.0, 2.0}, {1.5, 1.0}), 1.5);
  EXPECT_THROW(l1_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

class PageRankEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(PageRankEpsSweep, MassConservationNoDangling) {
  Rng rng(6);
  const auto g = Digraph::from_undirected(gnp(50, 0.25, rng));
  const auto pi = expected_visit_pagerank(g, {.eps = GetParam()});
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Eps, PageRankEpsSweep,
                         ::testing::Values(0.1, 0.15, 0.2, 0.3, 0.5, 0.85));

}  // namespace
}  // namespace km
