// Unit tests for the fiber primitive (sim/fiber.hpp) and the worker-pool
// executor (sim/executor.hpp) that multiplexes k machine fibers over W
// OS threads.
//
// FiberSwitch drives FiberContext::switch_to directly: entry/argument
// plumbing, repeated suspend/resume round trips, and stack usability.
// ExecutorPool exercises the scheduler: every machine runs exactly once
// at any worker count, parked machines resume when their predicate
// flips (including cross-worker wakeups through IdleHooks), the first
// escaping exception is rethrown from run() without stopping the rest,
// and k >> W multiplexing holds at the thousand-machine scale the
// engine needs.  Both suites run under the tsan CI job — scheduling
// races here would poison every result above.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/executor.hpp"
#include "sim/fiber.hpp"

namespace km {
namespace {

TEST(FiberSwitch, StackRoundsUpAndExposesUsableRange) {
  const FiberStack stack(1);
  EXPECT_NE(stack.base(), nullptr);
  EXPECT_GE(stack.size(), 1u);

  const FiberStack big(kDefaultFiberStackBytes);
  EXPECT_GE(big.size(), kDefaultFiberStackBytes);
}

TEST(FiberSwitch, StackMoveTransfersOwnership) {
  FiberStack a(kDefaultFiberStackBytes);
  void* const base = a.base();
  const std::size_t size = a.size();

  FiberStack b(std::move(a));
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(b.size(), size);
  EXPECT_EQ(a.base(), nullptr);  // NOLINT(bugprone-use-after-move)

  a = std::move(b);
  EXPECT_EQ(a.base(), base);
  EXPECT_EQ(b.base(), nullptr);  // NOLINT(bugprone-use-after-move)
}

/// Shared state for the ping-pong entries below: the fiber suspends
/// back to the native context after each step so the test observes
/// every intermediate state.
struct PingPong {
  FiberContext* native = nullptr;
  FiberContext* fiber = nullptr;
  int step = 0;
  int rounds = 0;  // ManySwitches: suspensions before terminating
};

void ping_pong_entry(void* raw) {
  auto* pp = static_cast<PingPong*>(raw);
  pp->step = 1;
  FiberContext::switch_to(*pp->fiber, *pp->native);
  pp->step = 2;
  FiberContext::switch_to(*pp->fiber, *pp->native, /*terminating=*/true);
}

TEST(FiberSwitch, EntryRunsOnFirstSwitchAndResumesWhereItLeft) {
  const FiberStack stack(kDefaultFiberStackBytes);
  FiberContext native;
  PingPong pp;
  FiberContext fiber(stack, &ping_pong_entry, &pp);
  pp.native = &native;
  pp.fiber = &fiber;

  ASSERT_EQ(pp.step, 0);  // construction must not run the entry
  FiberContext::switch_to(native, fiber);
  EXPECT_EQ(pp.step, 1);
  FiberContext::switch_to(native, fiber);
  EXPECT_EQ(pp.step, 2);
}

void counting_entry(void* raw) {
  auto* pp = static_cast<PingPong*>(raw);
  for (int i = 0; i < pp->rounds; ++i) {
    ++pp->step;
    FiberContext::switch_to(*pp->fiber, *pp->native);
  }
  ++pp->step;
  FiberContext::switch_to(*pp->fiber, *pp->native, /*terminating=*/true);
}

TEST(FiberSwitch, ManySuspendResumeRoundTrips) {
  const FiberStack stack(kDefaultFiberStackBytes);
  FiberContext native;
  PingPong pp;
  pp.rounds = 1000;
  FiberContext fiber(stack, &counting_entry, &pp);
  pp.native = &native;
  pp.fiber = &fiber;

  for (int i = 1; i <= pp.rounds + 1; ++i) {
    FiberContext::switch_to(native, fiber);
    EXPECT_EQ(pp.step, i);
  }
}

/// Burns ~depth stack frames with live state to prove the mmap'd stack
/// actually holds a working call chain (and that nothing lands on the
/// guard page under normal depths).
int recurse(int depth, int acc) {
  volatile int local = depth;  // keep the frame from being elided
  if (depth == 0) return acc + local;
  return recurse(depth - 1, acc + 1);
}

void deep_entry(void* raw) {
  auto* pp = static_cast<PingPong*>(raw);
  pp->step = recurse(500, 0);
  FiberContext::switch_to(*pp->fiber, *pp->native, /*terminating=*/true);
}

TEST(FiberSwitch, FiberStackSupportsDeepCallChains) {
  const FiberStack stack(kDefaultFiberStackBytes);
  FiberContext native;
  PingPong pp;
  FiberContext fiber(stack, &deep_entry, &pp);
  pp.native = &native;
  pp.fiber = &fiber;

  FiberContext::switch_to(native, fiber);
  EXPECT_EQ(pp.step, 500);
}

TEST(ExecutorPool, WorkerCountResolvesAndClamps) {
  EXPECT_GE(Executor::default_worker_count(), 1u);

  const Executor clamped(4, 100, 0, IdleHooks{});
  EXPECT_EQ(clamped.worker_count(), 4u);
  EXPECT_EQ(clamped.machine_count(), 4u);

  const Executor defaulted(4, 0, 0, IdleHooks{});
  EXPECT_GE(defaulted.worker_count(), 1u);
  EXPECT_LE(defaulted.worker_count(), 4u);

  const Executor single(9, 2, 0, IdleHooks{});
  EXPECT_EQ(single.worker_count(), 2u);
}

TEST(ExecutorPool, BlockAssignmentIsContiguousAndMonotone) {
  const Executor ex(10, 3, 0, IdleHooks{});
  EXPECT_EQ(ex.worker_of(0), 0u);
  std::size_t prev = 0;
  for (std::size_t m = 0; m < ex.machine_count(); ++m) {
    const std::size_t w = ex.worker_of(m);
    EXPECT_LT(w, ex.worker_count());
    EXPECT_GE(w, prev);  // never jumps backwards: contiguous blocks
    prev = w;
  }
  EXPECT_EQ(prev, ex.worker_count() - 1);  // every worker owns machines
}

TEST(ExecutorPool, EveryMachineRunsExactlyOnceAtAnyWorkerCount) {
  constexpr std::size_t kMachines = 32;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}, kMachines}) {
    std::vector<std::atomic<int>> runs(kMachines);
    Executor ex(kMachines, workers, 0, IdleHooks{});
    ex.run([&](std::size_t m) { runs[m].fetch_add(1); });
    for (std::size_t m = 0; m < kMachines; ++m) {
      EXPECT_EQ(runs[m].load(), 1) << "machine " << m << " at W=" << workers;
    }
  }
}

/// A single global "turn" both gates and wakes the machines: machine m
/// may proceed only when turn == m, and the turn moves *downwards* while
/// workers scan their blocks upwards — so every machine but the last
/// parks at least once, and most wakeups cross worker boundaries
/// (exactly the engine's barrier-release shape, minus the barrier).
struct TurnState {
  std::atomic<std::uint64_t> turn{0};
};

bool turn_ready(void* arg, std::size_t machine) {
  return static_cast<TurnState*>(arg)->turn.load(std::memory_order_acquire) ==
         machine;
}

std::uint64_t turn_epoch(void* arg) {
  return static_cast<TurnState*>(arg)->turn.load(std::memory_order_acquire);
}

void turn_wait(void* arg, std::uint64_t seen) {
  auto& turn = static_cast<TurnState*>(arg)->turn;
  while (turn.load(std::memory_order_acquire) == seen) {
    std::this_thread::yield();
  }
}

TEST(ExecutorPool, ParkedMachinesResumeAcrossWorkersInDependencyOrder) {
  constexpr std::size_t kMachines = 96;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    TurnState st;
    st.turn.store(kMachines - 1);
    std::vector<std::size_t> order;
    std::mutex mu;

    Executor ex(kMachines, workers, 0,
                IdleHooks{&turn_epoch, &turn_wait, &st});
    ex.run([&](std::size_t m) {
      while (st.turn.load(std::memory_order_acquire) != m) {
        ex.park(m, &turn_ready, &st);
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        order.push_back(m);
      }
      st.turn.fetch_sub(1, std::memory_order_release);
    });

    ASSERT_EQ(order.size(), kMachines) << "W=" << workers;
    for (std::size_t i = 0; i < kMachines; ++i) {
      EXPECT_EQ(order[i], kMachines - 1 - i) << "W=" << workers;
    }
  }
}

TEST(ExecutorPool, FirstExceptionRethrownAfterOthersComplete) {
  constexpr std::size_t kMachines = 16;
  std::atomic<int> completed{0};
  Executor ex(kMachines, 4, 0, IdleHooks{});
  EXPECT_THROW(ex.run([&](std::size_t m) {
                 if (m == 5) throw std::runtime_error("machine 5 boom");
                 completed.fetch_add(1);
               }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), static_cast<int>(kMachines) - 1);
}

TEST(ExecutorPool, ThousandsOfMachinesMultiplexOverTwoWorkers) {
  constexpr std::size_t kMachines = 2048;
  std::atomic<std::uint64_t> sum{0};
  // Small stacks: 2048 x 64 KiB reserves 128 MiB of address space, and
  // the trivial body touches almost none of it (lazy commit).
  Executor ex(kMachines, 2, 64 * 1024, IdleHooks{});
  ex.run([&](std::size_t m) { sum.fetch_add(m, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), std::uint64_t{kMachines} * (kMachines - 1) / 2);
}

}  // namespace
}  // namespace km
