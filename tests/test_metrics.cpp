// Tests for the per-superstep metrics timeline (sim/metrics.hpp): on a
// known program, the engine totals must equal the sum over the timeline,
// and the timeline must be off by default.
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace km {
namespace {

// A deterministic 3-superstep program: every machine sends a payload of
// (id+1) bytes to its successor, then all-gathers its id, then sends a
// 1-byte message to machine 0 (machine 0 to machine 1).
void known_program(MachineContext& ctx) {
  const std::size_t k = ctx.k();
  ctx.send((ctx.id() + 1) % k, 1,
           std::vector<std::byte>(ctx.id() + 1, std::byte{0xAB}));
  (void)ctx.exchange();
  (void)ctx.all_gather(ctx.id());
  ctx.send(ctx.id() == 0 ? 1 : 0, 2, std::vector<std::byte>(1, std::byte{0}));
  (void)ctx.exchange();
}

TEST(MetricsTimeline, OffByDefault) {
  Engine engine(4, {.bandwidth_bits = 64, .seed = 7});
  const Metrics m = engine.run(known_program);
  EXPECT_TRUE(m.timeline.empty());
  EXPECT_EQ(m.supersteps, 3u);
}

TEST(MetricsTimeline, TotalsEqualTimelineSums) {
  Engine engine(4, {.bandwidth_bits = 64, .seed = 7, .record_timeline = true});
  const Metrics m = engine.run(known_program);

  ASSERT_EQ(m.timeline.size(), m.supersteps);
  ASSERT_EQ(m.supersteps, 3u);

  std::uint64_t rounds = 0, messages = 0, bits = 0, max_link = 0;
  for (std::size_t i = 0; i < m.timeline.size(); ++i) {
    const SuperstepStats& s = m.timeline[i];
    EXPECT_EQ(s.superstep, i);  // dense 0-based indices
    rounds += s.rounds;
    messages += s.messages;
    bits += s.bits;
    max_link = std::max(max_link, s.max_link_bits);
  }
  EXPECT_EQ(rounds, m.rounds);
  EXPECT_EQ(messages, m.messages);
  EXPECT_EQ(bits, m.bits);
  EXPECT_EQ(max_link, m.max_link_bits_superstep);
}

TEST(MetricsTimeline, KnownProgramPerSuperstepCounts) {
  const std::size_t k = 4;
  Engine engine(k, {.bandwidth_bits = 64, .seed = 7, .record_timeline = true});
  const Metrics m = engine.run(known_program);

  ASSERT_EQ(m.timeline.size(), 3u);
  // Superstep 0: one message per machine, payloads 1..k bytes, each
  // charged Message::kHeaderBits of framing on the wire.
  EXPECT_EQ(m.timeline[0].messages, k);
  EXPECT_EQ(m.timeline[0].bits, 8u * (1 + 2 + 3 + 4) + k * Message::kHeaderBits);
  // Superstep 1: all_gather broadcasts k*(k-1) messages.
  EXPECT_EQ(m.timeline[1].messages, k * (k - 1));
  // Superstep 2: one 1-byte message per machine.
  EXPECT_EQ(m.timeline[2].messages, k);
  EXPECT_EQ(m.timeline[2].bits, 8u * k + k * Message::kHeaderBits);
}

TEST(MetricsTimeline, DeterministicAcrossRuns) {
  auto run = [] {
    Engine engine(5,
                  {.bandwidth_bits = 32, .seed = 3, .record_timeline = true});
    return engine.run(known_program);
  };
  const Metrics a = run();
  const Metrics b = run();
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bits, b.bits);
}

TEST(MetricsTimeline, EmptySuperstepsGetZeroEntries) {
  // A program whose second superstep carries no traffic still counts as a
  // superstep (the barrier happened); its timeline entry is all-zero.
  Engine engine(3, {.bandwidth_bits = 64, .seed = 1, .record_timeline = true});
  const Metrics m = engine.run([](MachineContext& ctx) {
    ctx.send((ctx.id() + 1) % ctx.k(), 0,
             std::vector<std::byte>(4, std::byte{1}));
    (void)ctx.exchange();
    (void)ctx.exchange();  // nobody sent anything
  });
  ASSERT_EQ(m.timeline.size(), 2u);
  EXPECT_GT(m.timeline[0].bits, 0u);
  EXPECT_EQ(m.timeline[1].rounds, 0u);
  EXPECT_EQ(m.timeline[1].messages, 0u);
  EXPECT_EQ(m.timeline[1].bits, 0u);
}

}  // namespace
}  // namespace km
