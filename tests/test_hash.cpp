// Unit tests for hashing (util/hash.hpp), in particular the properties
// the hash-based RVP relies on.
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace km {
namespace {

TEST(Hash, Fnv1aStableAndDiscriminating) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

TEST(Hash, HashU64IsBijectiveOnSamples) {
  // splitmix finalizer is a bijection; at least check injectivity on a
  // decent sample.
  std::vector<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 10000; ++i) hashes.push_back(hash_u64(i));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(Hash, VertexHashDependsOnSeed) {
  EXPECT_NE(hash_vertex(1, 42), hash_vertex(2, 42));
  EXPECT_EQ(hash_vertex(1, 42), hash_vertex(1, 42));
}

TEST(Hash, VertexHashModKIsBalanced) {
  // The RVP balance property (Section 1.1) hinges on this.
  constexpr std::size_t kMachines = 16;
  constexpr std::size_t kVertices = 64000;
  std::vector<int> counts(kMachines, 0);
  for (std::size_t v = 0; v < kVertices; ++v) {
    ++counts[hash_vertex(99, v) % kMachines];
  }
  const double expected = static_cast<double>(kVertices) / kMachines;
  for (int c : counts) EXPECT_NEAR(c, expected, 6 * std::sqrt(expected));
}

TEST(Hash, EdgeHashIsOrderIndependent) {
  EXPECT_EQ(hash_edge(5, 10, 20), hash_edge(5, 20, 10));
  EXPECT_NE(hash_edge(5, 10, 20), hash_edge(5, 10, 21));
  EXPECT_NE(hash_edge(5, 10, 20), hash_edge(6, 10, 20));
}

TEST(Hash, EdgeHashParityBalanced) {
  // The triangle designation tie-break uses the low bit of hash_edge.
  int ones = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    ones += static_cast<int>(hash_edge(7, i, i + 1) & 1);
  }
  EXPECT_NEAR(ones, kSamples / 2, 4 * std::sqrt(kSamples / 4.0));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_u64(1), 2), hash_combine(hash_u64(2), 1));
}

}  // namespace
}  // namespace km
