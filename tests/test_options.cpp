// Unit tests for CLI option parsing (util/options.hpp).
#include "util/options.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace km {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Options, EqualsForm) {
  const auto o = parse({"--n=100", "--eps=0.25", "--name=web"});
  EXPECT_EQ(o.get_uint("n", 0), 100u);
  EXPECT_DOUBLE_EQ(o.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(o.get_string("name", ""), "web");
}

TEST(Options, SpaceForm) {
  const auto o = parse({"--n", "42", "--mode", "fast"});
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_EQ(o.get_string("mode", ""), "fast");
}

TEST(Options, FlagWithoutValue) {
  const auto o = parse({"--verbose", "--n=5"});
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
  EXPECT_TRUE(o.get_bool("quiet", true));
}

TEST(Options, BoolValues) {
  const auto o = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_FALSE(o.get_bool("b", true));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
}

TEST(Options, FallbacksWhenAbsent) {
  const auto o = parse({});
  EXPECT_EQ(o.get_int("missing", -7), -7);
  EXPECT_EQ(o.get_uint("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(o.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, PositionalArguments) {
  const auto o = parse({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.positional()[1], "output.txt");
}

TEST(Options, NegativeNumbers) {
  const auto o = parse({"--x=-5", "--y=-2.5"});
  EXPECT_EQ(o.get_int("x", 0), -5);
  EXPECT_DOUBLE_EQ(o.get_double("y", 0.0), -2.5);
}

// ---- Negative paths: CLI misuse must fail loudly with a clear message ----

TEST(Options, DuplicateFlagThrows) {
  try {
    parse({"--n=1", "--n=2"});
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate flag --n"),
              std::string::npos);
  }
}

TEST(Options, DuplicateAcrossFormsThrows) {
  EXPECT_THROW(parse({"--n", "1", "--n=2"}), OptionsError);
}

TEST(Options, EmptyFlagNameThrows) {
  EXPECT_THROW(parse({"--=5"}), OptionsError);
  EXPECT_THROW(parse({"--", "x"}), OptionsError);
}

TEST(Options, MalformedIntThrows) {
  const auto o = parse({"--n=abc", "--m=12x"});
  try {
    o.get_int("n", 0);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'abc'"), std::string::npos);
  }
  EXPECT_THROW(o.get_int("m", 0), OptionsError);  // trailing garbage
}

TEST(Options, MalformedUintRejectsSigns) {
  const auto o = parse({"--k=-5", "--j=+5"});
  EXPECT_THROW(o.get_uint("k", 0), OptionsError);
  EXPECT_THROW(o.get_uint("j", 0), OptionsError);
}

TEST(Options, MalformedDoubleThrows) {
  const auto o = parse({"--eps=fast"});
  EXPECT_THROW(o.get_double("eps", 0.0), OptionsError);
}

TEST(Options, MalformedBoolThrows) {
  const auto o = parse({"--flag=maybe"});
  EXPECT_THROW(o.get_bool("flag", false), OptionsError);
}

TEST(Options, MissingValueThrows) {
  // "--n --k=2": --n swallows no value (next token is a flag), so a
  // numeric getter on it must complain rather than return the fallback.
  const auto o = parse({"--n", "--k=2"});
  try {
    o.get_uint("n", 7);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
  EXPECT_EQ(o.get_uint("k", 0), 2u);
}

TEST(Options, RejectUnknown) {
  const auto o = parse({"--n=1", "--typo=2"});
  EXPECT_NO_THROW(o.reject_unknown({"n", "typo"}));
  try {
    o.reject_unknown({"n", "k"});
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown flag --typo"), std::string::npos);
    EXPECT_NE(msg.find("--k"), std::string::npos);  // lists the accepted set
  }
}

TEST(Options, OutOfRangeIntThrows) {
  const auto o = parse({"--big=99999999999999999999999999"});
  EXPECT_THROW(o.get_int("big", 0), OptionsError);
  EXPECT_THROW(o.get_uint("big", 0), OptionsError);
}

}  // namespace
}  // namespace km
