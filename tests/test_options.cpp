// Unit tests for CLI option parsing (util/options.hpp).
#include "util/options.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace km {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Options, EqualsForm) {
  const auto o = parse({"--n=100", "--eps=0.25", "--name=web"});
  EXPECT_EQ(o.get_uint("n", 0), 100u);
  EXPECT_DOUBLE_EQ(o.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(o.get_string("name", ""), "web");
}

TEST(Options, SpaceForm) {
  const auto o = parse({"--n", "42", "--mode", "fast"});
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_EQ(o.get_string("mode", ""), "fast");
}

TEST(Options, FlagWithoutValue) {
  const auto o = parse({"--verbose", "--n=5"});
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
  EXPECT_TRUE(o.get_bool("quiet", true));
}

TEST(Options, BoolValues) {
  const auto o = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_FALSE(o.get_bool("b", true));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
}

TEST(Options, FallbacksWhenAbsent) {
  const auto o = parse({});
  EXPECT_EQ(o.get_int("missing", -7), -7);
  EXPECT_EQ(o.get_uint("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(o.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, PositionalArguments) {
  const auto o = parse({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.positional()[1], "output.txt");
}

TEST(Options, NegativeNumbers) {
  const auto o = parse({"--x=-5", "--y=-2.5"});
  EXPECT_EQ(o.get_int("x", 0), -5);
  EXPECT_DOUBLE_EQ(o.get_double("y", 0.0), -2.5);
}

}  // namespace
}  // namespace km
