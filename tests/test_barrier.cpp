// Tests for the sense-reversing combining-tree barrier (sim/barrier.hpp)
// and its role as the engine's superstep rendezvous: tree topology, the
// fold/finalize call pattern, schedule-jitter stress across machine
// counts (the interesting failures are schedule-dependent, so arrivals
// are deliberately jittered and the CI tsan job runs this binary under
// ThreadSanitizer), fault propagation through the tree, and sense
// reversal across consecutive supersteps.
#include "sim/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace km {
namespace {

TEST(TreeBarrier, TopologyCoversEveryParticipantExactlyOnce) {
  for (const std::size_t n :
       {1u, 2u, 3u, 4u, 5u, 7u, 16u, 17u, 63u, 64u, 255u, 256u}) {
    const TreeBarrier b(n);
    SCOPED_TRACE("n=" + std::to_string(n));
    ASSERT_GE(b.node_count(), b.leaf_count());
    // Every participant is covered by exactly its leaf_of node.
    std::vector<int> covered(n, 0);
    for (std::size_t leaf = 0; leaf < b.leaf_count(); ++leaf) {
      ASSERT_TRUE(b.is_leaf(leaf));
      const auto [begin, end] = b.children_of(leaf);
      EXPECT_EQ(b.fan_in(leaf), end - begin);
      EXPECT_LE(end - begin, TreeBarrier::kArity);
      for (std::size_t who = begin; who < end; ++who) {
        ASSERT_LT(who, n);
        ++covered[who];
        EXPECT_EQ(b.leaf_of(who), leaf);
      }
    }
    for (std::size_t who = 0; who < n; ++who) EXPECT_EQ(covered[who], 1);
    // Every node reaches the root by parent links; the root has none.
    EXPECT_EQ(b.parent_of(b.root()), TreeBarrier::kNoParent);
    for (std::size_t node = 0; node < b.node_count(); ++node) {
      std::size_t cur = node;
      std::size_t hops = 0;
      while (b.parent_of(cur) != TreeBarrier::kNoParent) {
        cur = b.parent_of(cur);
        ASSERT_LT(++hops, b.node_count());
      }
      EXPECT_EQ(cur, b.root());
    }
    // Internal nodes partition the level below: fan-ins telescope to n.
    std::size_t sum = 0;
    for (std::size_t leaf = 0; leaf < b.leaf_count(); ++leaf) {
      sum += b.fan_in(leaf);
    }
    EXPECT_EQ(sum, n);
  }
}

TEST(TreeBarrier, FoldsEachNodeOnceAndFinalizesOncePerEpisode) {
  for (const std::size_t n : {1u, 2u, 5u, 16u, 64u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    TreeBarrier barrier(n);
    constexpr int kEpisodes = 7;
    std::vector<std::atomic<int>> folds(barrier.node_count());
    std::atomic<int> finalizes{0};
    std::atomic<int> concurrent_finalize{0};
    std::atomic<int> stop_seen{0};
    {
      std::vector<std::jthread> threads;
      threads.reserve(n);
      for (std::size_t who = 0; who < n; ++who) {
        threads.emplace_back([&, who] {
          Rng jitter(0xbadf00d, who);
          for (int ep = 0; ep < kEpisodes; ++ep) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(jitter.below(150)));
            const bool stop = barrier.arrive(
                who,
                [&](std::size_t node, bool, std::size_t, std::size_t) {
                  folds[node].fetch_add(1);
                },
                [&] {
                  // finalize must be exclusive: two concurrent calls
                  // would mean two threads both thought they were last.
                  EXPECT_EQ(concurrent_finalize.fetch_add(1), 0);
                  finalizes.fetch_add(1);
                  concurrent_finalize.fetch_sub(1);
                  return ep == kEpisodes - 1;  // stop on the last episode
                });
            EXPECT_EQ(stop, ep == kEpisodes - 1);
            if (stop) stop_seen.fetch_add(1);
          }
        });
      }
    }
    EXPECT_EQ(finalizes.load(), kEpisodes);
    EXPECT_EQ(stop_seen.load(), static_cast<int>(n))
        << "every participant must observe the root's stop decision";
    for (std::size_t node = 0; node < barrier.node_count(); ++node) {
      EXPECT_EQ(folds[node].load(), kEpisodes)
          << "node " << node << " must fold exactly once per episode";
    }
  }
}

TEST(TreeBarrier, ResetRearmsAfterStop) {
  TreeBarrier barrier(3);
  auto no_fold = [](std::size_t, bool, std::size_t, std::size_t) {};
  for (int round = 0; round < 2; ++round) {
    std::atomic<int> stops{0};
    {
      std::vector<std::jthread> threads;
      for (std::size_t who = 0; who < 3; ++who) {
        threads.emplace_back([&, who] {
          if (barrier.arrive(who, no_fold, [] { return true; })) {
            stops.fetch_add(1);
          }
        });
      }
    }
    EXPECT_EQ(stops.load(), 3);
    barrier.reset();
  }
}

// ---------------------------------------------------------------------------
// Engine-level barrier stress
// ---------------------------------------------------------------------------

// Every machine sends one distinct message to every peer per superstep
// while sleeping random amounts before sending and before arriving, so
// machines hit the tree in a different interleaving every run.  Receivers
// verify the full contract: count, ascending source, and per-step values.
void jittered_all_to_all(std::size_t machines, int supersteps,
                         std::uint64_t seed) {
  Engine engine(machines, {.bandwidth_bits = 1 << 16, .seed = seed});
  engine.run([&](MachineContext& ctx) {
    Rng jitter(seed ^ 0x7177e5, ctx.id());
    for (int step = 0; step < supersteps; ++step) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(jitter.below(200)));
      for (std::size_t dst = 0; dst < machines; ++dst) {
        if (dst == ctx.id()) continue;
        Writer w;
        w.put_varint(static_cast<std::uint64_t>(step) * machines + ctx.id());
        ctx.send(dst, 1, w);
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(jitter.below(200)));
      const auto in = ctx.exchange();
      ASSERT_EQ(in.size(), machines - 1);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const std::size_t want_src = i + (i >= ctx.id() ? 1 : 0);
        ASSERT_EQ(in[i].src, want_src);
        Reader r(in[i].payload);
        ASSERT_EQ(r.get_varint(),
                  static_cast<std::uint64_t>(step) * machines + want_src);
      }
    }
  });
}

TEST(BarrierStress, JitteredAllToAllSmall) {
  jittered_all_to_all(2, 4, 11);
  jittered_all_to_all(3, 4, 12);
}

TEST(BarrierStress, JitteredAllToAllMedium) {
  jittered_all_to_all(16, 3, 13);
  jittered_all_to_all(64, 2, 14);
}

TEST(BarrierStress, JitteredRing256) {
  // k = 256: the tree is 4 levels deep; a neighbor ring keeps the
  // traffic linear in k so the stress is the rendezvous, not delivery.
  constexpr std::size_t kMachines = 256;
  constexpr int kSupersteps = 3;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 15});
  const auto metrics = engine.run([&](MachineContext& ctx) {
    Rng jitter(0xc0ffee, ctx.id());
    for (int step = 0; step < kSupersteps; ++step) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(jitter.below(100)));
      Writer w;
      w.put_varint(static_cast<std::uint64_t>(step) * 1000 + ctx.id());
      ctx.send((ctx.id() + 1) % kMachines, 2, w);
      const auto in = ctx.exchange();
      ASSERT_EQ(in.size(), 1u);
      const std::size_t want_src = (ctx.id() + kMachines - 1) % kMachines;
      ASSERT_EQ(in[0].src, want_src);
      Reader r(in[0].payload);
      ASSERT_EQ(r.get_varint(),
                static_cast<std::uint64_t>(step) * 1000 + want_src);
    }
  });
  EXPECT_EQ(metrics.supersteps, static_cast<std::uint64_t>(kSupersteps));
  EXPECT_EQ(metrics.messages, kMachines * kSupersteps);
}

TEST(BarrierStress, FaultInjectionPropagatesThroughTree) {
  // The injected throw happens on the root finalizer with 64 machines
  // parked across a 3-level tree; every one of them must wake, see the
  // stop, and the error must surface out of run() — no deadlock.
  constexpr std::size_t kMachines = 64;
  EngineConfig cfg{.bandwidth_bits = 1 << 12, .seed = 16};
  auto fired = std::make_shared<std::atomic<bool>>(false);
  cfg.barrier_fault_injection = [fired](std::uint64_t superstep) {
    if (superstep == 2 && !fired->exchange(true)) {
      throw std::runtime_error("tree merge failure");
    }
  };
  Engine engine(kMachines, cfg);
  try {
    engine.run([&](MachineContext& ctx) {
      for (int step = 0; step < 6; ++step) {
        Writer w;
        w.put_varint(static_cast<std::uint64_t>(step));
        ctx.send((ctx.id() + 1) % kMachines, 1, w);
        ctx.exchange();
      }
    });
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tree merge failure");
  }
  // The barrier must be fully re-armed: the same engine runs again.
  const auto metrics = engine.run([&](MachineContext& ctx) {
    EXPECT_EQ(ctx.all_reduce_sum(1), kMachines);
  });
  EXPECT_EQ(metrics.supersteps, 1u);
}

TEST(BarrierStress, SenseReversalAcrossConsecutiveSupersteps) {
  // Runs well past three sense flips and asserts each superstep delivers
  // exactly its own wave: a parity/sense bug would surface as stale or
  // missing messages in some superstep.
  constexpr std::size_t kMachines = 16;
  constexpr int kSupersteps = 6;
  Engine engine(kMachines, {.bandwidth_bits = 1 << 16, .seed = 17});
  engine.run([&](MachineContext& ctx) {
    for (int step = 0; step < kSupersteps; ++step) {
      Writer w;
      w.put_varint(static_cast<std::uint64_t>(step));
      ctx.broadcast(3, w);
      const auto in = ctx.exchange();
      ASSERT_EQ(in.size(), kMachines - 1);
      for (const auto& msg : in) {
        Reader r(msg.payload);
        ASSERT_EQ(r.get_varint(), static_cast<std::uint64_t>(step))
            << "superstep " << step << " delivered another superstep's wave";
      }
    }
  });
}

}  // namespace
}  // namespace km
