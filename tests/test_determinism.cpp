// Worker-count invariance: the executor's one observable promise.
//
// RunParams::workers is execution policy — how many OS threads the
// fiber pool multiplexes the k machines over — and must never leak into
// results.  For every registered workload this suite renders the full
// km.run_result/v1 document at workers = 1 (pure sequential
// multiplexing), 2, hardware (0), and k (thread-per-machine, the
// pre-executor shape) and requires the serialized bytes to be identical
// across the sweep AND equal to the checked-in golden snapshot — so a
// scheduling-order leak fails against the pinned history, not just
// against a sibling run.  Only the documented exempt keys (wall_ms,
// timing) are stripped; keep the list in sync with results.hpp,
// tests/test_golden_metrics.cpp, and tests/test_trace.cpp.
//
// A second sweep runs selected workloads at k = 12 with a worker count
// that divides the machines unevenly across blocks, since the golden
// cell's k = 4 keeps every block tiny.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/dataset.hpp"
#include "runtime/results.hpp"
#include "runtime/workload.hpp"

namespace km {
namespace {

/// Same pinned scenario table as tests/test_golden_metrics.cpp (the
/// golden suite asserts it covers every registered workload).
const std::map<std::string, std::string>& golden_datasets() {
  static const std::map<std::string, std::string> specs = {
      {"cliques4", "gnp:n=48,p=0.15"},
      {"components", "gnp:n=64,p=0.05"},
      {"connectivity", "gnp:n=64,p=0.05"},
      {"connectivity_baseline", "gnp:n=64,p=0.05"},
      {"mst", "gnp:n=64,p=0.08,maxw=1000"},
      {"mst_sketch", "gnp:n=48,p=0.08,maxw=1000"},
      {"pagerank", "gnp:n=64,p=0.05"},
      {"pagerank_baseline", "gnp:n=64,p=0.05"},
      {"sort", "keys:n=512"},
      {"triangles", "gnp:n=48,p=0.15"},
      {"triangles_baseline", "gnp:n=48,p=0.15"},
  };
  return specs;
}

std::string render(const Workload& workload, const std::string& spec,
                   std::size_t k, std::size_t workers) {
  RunParams params;
  params.k = k;
  params.bandwidth_bits = 0;
  params.seed = 7;
  params.record_timeline = true;
  params.check = true;
  params.workers = workers;
  const Dataset dataset =
      load_dataset(spec, workload.input_kind(), params.seed);
  return run_result_to_json(run_workload(workload, dataset, params)) + "\n";
}

/// Drops the exempt wall-clock keys (scalars and whole blocks) — the
/// same stripper the golden suite documents.
std::vector<std::string> strip_exempt(const std::string& text) {
  static const std::vector<std::string> keys = {"\"wall_ms\":",
                                                "\"timing\":"};
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  int depth = 0;
  while (std::getline(in, line)) {
    if (depth > 0) {
      for (char c : line) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      continue;
    }
    bool exempt = false;
    for (const std::string& key : keys) {
      const std::size_t pos = line.find(key);
      if (pos == std::string::npos) continue;
      exempt = true;
      for (char c : line.substr(pos)) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
      }
      break;
    }
    if (!exempt) lines.push_back(line);
  }
  return lines;
}

TEST(Determinism, GoldenCellIsWorkerCountInvariantAndMatchesSnapshots) {
  constexpr std::size_t kGoldenK = 4;
  // 0 = hardware concurrency; kGoldenK = thread-per-machine.
  const std::size_t sweep[] = {1, 2, 0, kGoldenK};
  for (const auto& [name, spec] : golden_datasets()) {
    const Workload* workload = WorkloadRegistry::instance().find(name);
    ASSERT_NE(workload, nullptr) << name;

    const std::vector<std::string> baseline =
        strip_exempt(render(*workload, spec, kGoldenK, /*workers=*/1));
    for (const std::size_t workers : sweep) {
      if (workers == 1) continue;
      const std::vector<std::string> doc =
          strip_exempt(render(*workload, spec, kGoldenK, workers));
      EXPECT_EQ(doc, baseline)
          << name << ": document at workers=" << workers
          << " diverged from workers=1 — scheduling leaked into results";
    }

    std::ifstream in(std::string(KM_GOLDEN_DIR) + "/" + name + ".json");
    ASSERT_TRUE(in.good()) << "missing golden snapshot for " << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(baseline, strip_exempt(buffer.str()))
        << name << ": workers=1 document diverged from the checked-in "
                   "golden snapshot";
  }
}

TEST(Determinism, UnevenBlocksAtLargerKStayInvariant) {
  // k = 12 over 5 workers gives blocks of 3,3,3,3 and an empty tail
  // range plus uneven last block at 7 workers — the shapes the golden
  // cell never reaches.
  const std::vector<std::string> names = {"connectivity", "mst_sketch",
                                          "sort"};
  for (const std::string& name : names) {
    const Workload* workload = WorkloadRegistry::instance().find(name);
    ASSERT_NE(workload, nullptr) << name;
    const std::string& spec = golden_datasets().at(name);

    const std::vector<std::string> baseline =
        strip_exempt(render(*workload, spec, 12, /*workers=*/1));
    for (const std::size_t workers : {std::size_t{5}, std::size_t{7},
                                      std::size_t{12}}) {
      EXPECT_EQ(strip_exempt(render(*workload, spec, 12, workers)), baseline)
          << name << " at k=12, workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace km
