// Tests for 4-clique enumeration (core/cliques.hpp): the paper's
// "generalizes to other small subgraphs such as cliques" claim (§1.2).
#include "core/cliques.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

/// O(n^4) brute force for cross-checking the reference kernel.
std::uint64_t brute_force_k4(const Graph& g) {
  std::uint64_t count = 0;
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b)) continue;
      for (Vertex x = b + 1; x < n; ++x) {
        if (!g.has_edge(a, x) || !g.has_edge(b, x)) continue;
        for (Vertex y = x + 1; y < n; ++y) {
          if (g.has_edge(a, y) && g.has_edge(b, y) && g.has_edge(x, y)) {
            ++count;
          }
        }
      }
    }
  }
  return count;
}

CliqueResult run(const Graph& g, std::size_t k, std::uint64_t seed,
                 CliqueConfig cfg = {}) {
  Engine engine(k, {.bandwidth_bits = EngineConfig::default_bandwidth(
                        g.num_vertices()),
                    .seed = seed});
  Rng prng(seed ^ 0x4444);
  const auto part = VertexPartition::random(g.num_vertices(), k, prng);
  return distributed_four_cliques(g, part, engine, cfg);
}

TEST(CliqueRef, CompleteGraphCounts) {
  for (std::size_t n : {4, 5, 6, 8, 10}) {
    EXPECT_EQ(count_four_cliques(complete_graph(n)),
              static_cast<std::uint64_t>(binomial_coeff(n, 4)))
        << "K_" << n;
  }
}

TEST(CliqueRef, K4FreeGraphs) {
  EXPECT_EQ(count_four_cliques(path_graph(20)), 0u);
  EXPECT_EQ(count_four_cliques(star_graph(20)), 0u);
  EXPECT_EQ(count_four_cliques(cycle_graph(12)), 0u);
  EXPECT_EQ(count_four_cliques(complete_graph(3)), 0u);
  Rng rng(1);
  EXPECT_EQ(count_four_cliques(random_bipartite(15, 15, 0.6, rng)), 0u);
}

class CliqueRefSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliqueRefSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const auto g = gnp(30, 0.4, rng);
  EXPECT_EQ(count_four_cliques(g), brute_force_k4(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueRefSweep,
                         ::testing::Values(2, 3, 4, 5));

TEST(CliqueRef, EnumerationIsSortedAndValid) {
  Rng rng(6);
  const auto g = gnp(40, 0.35, rng);
  const auto cs = enumerate_four_cliques(g);
  EXPECT_TRUE(std::is_sorted(cs.begin(), cs.end()));
  EXPECT_EQ(cs.size(), count_four_cliques(g));
  for (const auto& c : cs) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        EXPECT_TRUE(g.has_edge(c[i], c[j]));
      }
    }
    EXPECT_TRUE(c[0] < c[1] && c[1] < c[2] && c[2] < c[3]);
  }
}

TEST(CliquesKm, SmallCompleteGraph) {
  const auto res = run(complete_graph(10), 8, 7);
  EXPECT_EQ(res.total, 210u);  // C(10,4)
  EXPECT_EQ(res.merged_sorted(), enumerate_four_cliques(complete_graph(10)));
}

class CliquesKmSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(CliquesKmSweep, MatchesReferenceOnGnp) {
  const auto [k, seed] = GetParam();
  Rng rng(seed ^ 0x99);
  const auto g = gnp(80, 0.3, rng);
  const auto res = run(g, k, seed * 7 + 1);
  EXPECT_EQ(res.total, count_four_cliques(g)) << "k=" << k;
  EXPECT_EQ(res.merged_sorted(), enumerate_four_cliques(g));
  EXPECT_EQ(res.metrics.dropped_messages, 0u);
}

TEST_P(CliquesKmSweep, MatchesReferenceOnWattsStrogatz) {
  const auto [k, seed] = GetParam();
  Rng rng(seed ^ 0xAA);
  const auto g = watts_strogatz(150, 10, 0.1, rng);
  const auto res = run(g, k, seed * 11 + 3);
  EXPECT_EQ(res.total, count_four_cliques(g)) << "k=" << k;
  EXPECT_EQ(res.merged_sorted(), enumerate_four_cliques(g));
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeed, CliquesKmSweep,
    ::testing::Combine(::testing::Values(2, 8, 16, 81),
                       ::testing::Values(1, 2)));

TEST(CliquesKm, EachCliqueReportedOnce) {
  Rng rng(8);
  const auto g = gnp(100, 0.25, rng);
  const auto merged = run(g, 16, 9).merged_sorted();
  EXPECT_EQ(std::adjacent_find(merged.begin(), merged.end()), merged.end());
}

TEST(CliquesKm, CountingWithoutRecording) {
  Rng rng(10);
  const auto g = gnp(70, 0.3, rng);
  CliqueConfig cfg;
  cfg.record_cliques = false;
  const auto res = run(g, 8, 11, cfg);
  EXPECT_EQ(res.total, count_four_cliques(g));
  for (const auto& cs : res.per_machine_cliques) EXPECT_TRUE(cs.empty());
}

TEST(CliquesKm, ColorAndWorkerCounts) {
  EXPECT_EQ(clique_color_count(1), 1u);
  EXPECT_EQ(clique_color_count(15), 1u);
  EXPECT_EQ(clique_color_count(16), 2u);
  EXPECT_EQ(clique_color_count(80), 2u);
  EXPECT_EQ(clique_color_count(81), 3u);
  EXPECT_EQ(clique_color_count(256), 4u);
  EXPECT_EQ(clique_worker_count(16), 5u);   // C(5,4)
  EXPECT_EQ(clique_worker_count(81), 15u);  // C(6,4)
  for (std::size_t k = 1; k < 600; ++k) {
    EXPECT_LE(clique_worker_count(k), k) << k;
  }
}

TEST(CliquesKm, DeterministicForFixedSeeds) {
  Rng rng(12);
  const auto g = gnp(60, 0.3, rng);
  const auto a = run(g, 8, 13);
  const auto b = run(g, 8, 13);
  EXPECT_EQ(a.merged_sorted(), b.merged_sorted());
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

}  // namespace
}  // namespace km
