// Unit tests for descriptive statistics (util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace km {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic example, sd = 2
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Accumulator c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Accumulator, Imbalance) {
  Accumulator acc;
  acc.add(10.0);
  acc.add(10.0);
  acc.add(40.0);
  EXPECT_DOUBLE_EQ(acc.imbalance(), 2.0);  // max 40 / mean 20
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 1.5);
}

TEST(Quantile, UnsortedInputHandled) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, EmptyIsZero) { EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0); }

TEST(Summarize, SpanOverload) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  const auto acc = summarize(xs);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 1: [1,1]
  h.add(2);   // bucket 2: [2,3]
  h.add(3);   // bucket 2
  h.add(4);   // bucket 3: [4,7]
  h.add(100);  // bucket 7: [64,127]
  const auto& b = h.buckets();
  ASSERT_GE(b.size(), 8u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
  EXPECT_EQ(b[7], 1u);
  EXPECT_FALSE(h.render().empty());
}

}  // namespace
}  // namespace km
