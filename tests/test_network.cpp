// Tests for per-link bandwidth accounting (sim/network.hpp) — the cost
// model of Section 1.1: B bits per link per round, rounds = max over
// links of ceil(bits/B).
#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace km {
namespace {

Message make_msg(std::uint32_t dst, std::size_t payload_bytes,
                 std::uint16_t tag = 0) {
  Message m;
  m.dst = dst;
  m.tag = tag;
  m.payload = std::vector<std::byte>(payload_bytes, std::byte{0});
  return m;
}

struct Boxes {
  std::vector<std::vector<Message>> out, in;
  std::vector<std::uint64_t> send_bits, recv_bits;
  explicit Boxes(std::size_t k)
      : out(k), in(k), send_bits(k, 0), recv_bits(k, 0) {}
};

TEST(Network, EmptySuperstepCostsNothing) {
  Network net(4, 100);
  Boxes b(4);
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_FALSE(stats.any);
}

TEST(Network, SingleSmallMessageIsOneRound) {
  Network net(4, 1000);
  Boxes b(4);
  b.out[0].push_back(make_msg(1, 4));  // 16 + 32 = 48 bits
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bits, 48u);
  ASSERT_EQ(b.in[1].size(), 1u);
  EXPECT_EQ(b.in[1][0].src, 0u);
  EXPECT_EQ(b.send_bits[0], 48u);
  EXPECT_EQ(b.recv_bits[1], 48u);
}

TEST(Network, RoundsAreCeilOfLinkBitsOverBandwidth) {
  Network net(3, 100);
  Boxes b(3);
  // 5 messages of 48 bits each on link 0->1: 240 bits, B=100 => 3 rounds.
  for (int i = 0; i < 5; ++i) b.out[0].push_back(make_msg(1, 4));
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.max_link_bits, 240u);
  EXPECT_EQ(stats.rounds, 3u);
}

TEST(Network, ParallelLinksDoNotAdd) {
  // Same total traffic spread over distinct links costs max, not sum.
  Network net(4, 100);
  Boxes b(4);
  for (std::uint32_t dst = 1; dst < 4; ++dst) {
    b.out[0].push_back(make_msg(dst, 4));  // 48 bits per link
  }
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.bits, 144u);
}

TEST(Network, OppositeDirectionsAreSeparateLinks) {
  // The paper's links are bidirectional with B bits each way per round;
  // the simulator models each direction as its own budget.
  Network net(2, 48);
  Boxes b(2);
  b.out[0].push_back(make_msg(1, 4));
  b.out[1].push_back(make_msg(0, 4));
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.rounds, 1u);  // both fit simultaneously
}

TEST(Network, HotLinkDominates) {
  Network net(4, 48);
  Boxes b(4);
  b.out[0].push_back(make_msg(1, 4));
  for (int i = 0; i < 10; ++i) b.out[2].push_back(make_msg(3, 4));
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.rounds, 10u);
}

TEST(Network, SelfMessageThrows) {
  Network net(3, 100);
  Boxes b(3);
  b.out[1].push_back(make_msg(1, 4));
  EXPECT_THROW(net.deliver(b.out, b.in, b.send_bits, b.recv_bits),
               std::logic_error);
}

TEST(Network, BadDestinationThrows) {
  Network net(3, 100);
  Boxes b(3);
  b.out[0].push_back(make_msg(7, 4));
  EXPECT_THROW(net.deliver(b.out, b.in, b.send_bits, b.recv_bits),
               std::out_of_range);
}

TEST(Network, StateResetsBetweenSupersteps) {
  Network net(2, 48);
  Boxes b(2);
  for (int i = 0; i < 4; ++i) b.out[0].push_back(make_msg(1, 4));
  auto s1 = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(s1.rounds, 4u);
  b.in[1].clear();
  b.out[0].push_back(make_msg(1, 4));
  auto s2 = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(s2.rounds, 1u);  // no carry-over from the previous superstep
}

TEST(Network, DeliveryOrderIsDeterministic) {
  Network net(3, 1000);
  Boxes b(3);
  b.out[2].push_back(make_msg(1, 1, 20));
  b.out[0].push_back(make_msg(1, 1, 10));
  b.out[0].push_back(make_msg(1, 1, 11));
  net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  ASSERT_EQ(b.in[1].size(), 3u);
  // Ascending source order, then send order.
  EXPECT_EQ(b.in[1][0].tag, 10u);
  EXPECT_EQ(b.in[1][1].tag, 11u);
  EXPECT_EQ(b.in[1][2].tag, 20u);
}

TEST(Network, InvalidConstructionThrows) {
  EXPECT_THROW(Network(0, 100), std::invalid_argument);
  EXPECT_THROW(Network(4, 0), std::invalid_argument);
}

TEST(Network, HeaderBitsAreCharged) {
  Network net(2, 16);
  Boxes b(2);
  b.out[0].push_back(make_msg(1, 0));  // empty payload = header only
  const auto stats = net.deliver(b.out, b.in, b.send_bits, b.recv_bits);
  EXPECT_EQ(stats.bits, Message::kHeaderBits);
  EXPECT_EQ(stats.rounds, 1u);
}

}  // namespace
}  // namespace km
