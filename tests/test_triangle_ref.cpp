// Tests for the sequential triangle/triad kernels (graph/triangle_ref.hpp).
#include "graph/triangle_ref.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "util/mathx.hpp"

namespace km {
namespace {

/// O(n^3) brute-force triangle count for cross-checking.
std::uint64_t brute_force_triangles(const Graph& g) {
  std::uint64_t count = 0;
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      for (Vertex w = v + 1; w < n; ++w) {
        if (g.has_edge(u, w) && g.has_edge(v, w)) ++count;
      }
    }
  }
  return count;
}

TEST(TriangleRef, CompleteGraphCounts) {
  for (std::size_t n : {3, 4, 5, 6, 10}) {
    const auto g = complete_graph(n);
    EXPECT_EQ(count_triangles(g),
              static_cast<std::uint64_t>(binomial_coeff(n, 3)))
        << "K_" << n;
  }
}

TEST(TriangleRef, TriangleFreeGraphs) {
  EXPECT_EQ(count_triangles(path_graph(20)), 0u);
  EXPECT_EQ(count_triangles(cycle_graph(8)), 0u);
  EXPECT_EQ(count_triangles(star_graph(30)), 0u);
  Rng rng(1);
  EXPECT_EQ(count_triangles(random_bipartite(20, 20, 0.5, rng)), 0u);
}

TEST(TriangleRef, SingleTriangleEnumeration) {
  const auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto ts = enumerate_triangles(g);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0], (Triangle{0, 1, 2}));
}

TEST(TriangleRef, EnumerationHasNoDuplicatesAndIsSorted) {
  Rng rng(2);
  const auto g = gnp(80, 0.3, rng);
  const auto ts = enumerate_triangles(g);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_EQ(std::set<Triangle>(ts.begin(), ts.end()).size(), ts.size());
  for (const auto& t : ts) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
    EXPECT_TRUE(g.has_edge(t[0], t[1]));
    EXPECT_TRUE(g.has_edge(t[1], t[2]));
    EXPECT_TRUE(g.has_edge(t[0], t[2]));
  }
}

class TriangleSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleSeedSweep, MatchesBruteForceOnGnp) {
  Rng rng(GetParam());
  const auto g = gnp(60, 0.25, rng);
  EXPECT_EQ(count_triangles(g), brute_force_triangles(g));
}

TEST_P(TriangleSeedSweep, PerVertexCountsSumToThreeTimesTotal) {
  Rng rng(GetParam() ^ 0x111);
  const auto g = gnp(70, 0.2, rng);
  const auto counts = per_vertex_triangle_counts(g);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, 3 * count_triangles(g));
}

TEST_P(TriangleSeedSweep, OpenTriadIdentityHolds) {
  // #open triads = sum_v C(deg v,2) - 3 * #triangles; and enumeration
  // must agree with the closed-form count.
  Rng rng(GetParam() ^ 0x222);
  const auto g = gnp(40, 0.3, rng);
  EXPECT_EQ(enumerate_open_triads(g).size(), count_open_triads(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(TriangleRef, OpenTriadsOfStar) {
  // Star K_{1,n-1}: every pair of leaves is an open triad via the center.
  const auto g = star_graph(10);
  EXPECT_EQ(count_open_triads(g), binomial_coeff(9, 2));
  const auto triads = enumerate_open_triads(g);
  EXPECT_EQ(triads.size(), 36u);
  for (const auto& t : triads) {
    // Center 0 is the middle vertex; stored sorted so t[0] == 0.
    EXPECT_EQ(t[0], 0u);
  }
}

TEST(TriangleRef, OpenTriadsOfCompleteGraphIsZero) {
  EXPECT_EQ(count_open_triads(complete_graph(8)), 0u);
  EXPECT_TRUE(enumerate_open_triads(complete_graph(8)).empty());
}

TEST(TriangleRef, ClusteringCoefficient) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(complete_graph(6)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(star_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(path_graph(2)), 0.0);
}

TEST(TriangleRef, WattsStrogatzLatticeHasHighClustering) {
  Rng rng(7);
  const auto g = watts_strogatz(200, 6, 0.0, rng);
  EXPECT_GT(global_clustering_coefficient(g), 0.4);
}

TEST(TriangleRef, RivinBoundHoldsEmpirically) {
  // Any graph respects t <= max_triangles_for_edges(m) (Lemma 11's tool).
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gnp(60, 0.2 + 0.1 * trial, rng);
    const double t = static_cast<double>(count_triangles(g));
    EXPECT_LE(t, max_triangles_for_edges(static_cast<double>(g.num_edges())));
  }
}

TEST(TriangleRef, EmptyAndTinyGraphs) {
  EXPECT_EQ(count_triangles(Graph::from_edges(0, {})), 0u);
  EXPECT_EQ(count_triangles(Graph::from_edges(1, {})), 0u);
  EXPECT_EQ(count_triangles(Graph::from_edges(2, {{0, 1}})), 0u);
  EXPECT_EQ(count_open_triads(Graph::from_edges(2, {{0, 1}})), 0u);
}

}  // namespace
}  // namespace km
