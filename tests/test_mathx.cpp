// Unit tests for math helpers (util/mathx.hpp), including the
// Rivin/Kruskal-Katona bound used by Lemma 11.
#include "util/mathx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace km {
namespace {

TEST(Mathx, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(ceil_log2(1ULL << 63), 63u);
}

TEST(Mathx, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Mathx, FloorCbrtExact) {
  EXPECT_EQ(floor_cbrt(0), 0u);
  EXPECT_EQ(floor_cbrt(1), 1u);
  EXPECT_EQ(floor_cbrt(7), 1u);
  EXPECT_EQ(floor_cbrt(8), 2u);
  EXPECT_EQ(floor_cbrt(26), 2u);
  EXPECT_EQ(floor_cbrt(27), 3u);
  EXPECT_EQ(floor_cbrt(63), 3u);
  EXPECT_EQ(floor_cbrt(64), 4u);
  EXPECT_EQ(floor_cbrt(124), 4u);
  EXPECT_EQ(floor_cbrt(125), 5u);
  EXPECT_EQ(floor_cbrt(215), 5u);
  EXPECT_EQ(floor_cbrt(216), 6u);
  // Exhaustive sanity over a range.
  for (std::uint64_t x = 0; x < 2000; ++x) {
    const auto c = floor_cbrt(x);
    EXPECT_LE(c * c * c, x);
    EXPECT_GT((c + 1) * (c + 1) * (c + 1), x);
  }
}

TEST(Mathx, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 5), 2u);
}

TEST(Mathx, BinomialCoeff) {
  EXPECT_DOUBLE_EQ(binomial_coeff(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coeff(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coeff(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coeff(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial_coeff(3, 5), 0.0);
  EXPECT_NEAR(binomial_coeff(100, 2), 4950.0, 1e-9);
  EXPECT_NEAR(binomial_coeff(1000, 3), 166167000.0, 1.0);
}

TEST(Mathx, BinaryEntropy) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.25), 0.811278, 1e-5);
  EXPECT_DOUBLE_EQ(binary_entropy(0.3), binary_entropy(0.7));
}

TEST(Mathx, EntropyOfUniformDistribution) {
  std::vector<double> uniform(8, 1.0);
  EXPECT_NEAR(entropy_bits(uniform), 3.0, 1e-12);
  std::vector<double> point{1.0, 0.0, 0.0};
  EXPECT_NEAR(entropy_bits(point), 0.0, 1e-12);
}

TEST(Mathx, EntropyIgnoresScaling) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(entropy_bits(a), entropy_bits(b), 1e-12);
}

TEST(Mathx, EntropyCountsMatchesWeights) {
  std::vector<std::uint64_t> counts{1, 2, 3};
  std::vector<double> weights{1.0, 2.0, 3.0};
  EXPECT_NEAR(entropy_bits_counts(counts), entropy_bits(weights), 1e-12);
}

TEST(Mathx, EntropyEmptyIsZero) {
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits_counts({}), 0.0);
}

TEST(Mathx, FitLogLogSlopeRecoversExponent) {
  // y = 3 x^{-2}  ->  slope -2.
  std::vector<double> x{1, 2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 / (xi * xi));
  EXPECT_NEAR(fit_log_log_slope(x, y), -2.0, 1e-9);
  EXPECT_NEAR(log_log_correlation(x, y), -1.0, 1e-9);
}

TEST(Mathx, FitLogLogSlopeFractionalExponent) {
  // y = x^{5/3}.
  std::vector<double> x{1, 8, 27, 64, 125};
  std::vector<double> y;
  for (double xi : x) y.push_back(std::pow(xi, 5.0 / 3.0));
  EXPECT_NEAR(fit_log_log_slope(x, y), 5.0 / 3.0, 1e-9);
}

TEST(Mathx, FitLogLogDegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_log_log_slope({}, {}), 0.0);
  std::vector<double> one{2.0};
  EXPECT_DOUBLE_EQ(fit_log_log_slope(one, one), 0.0);
  std::vector<double> with_zero{0.0, 2.0, 4.0};
  std::vector<double> ys{1.0, 2.0, 4.0};
  // Zero x entries are skipped, not crashed on.
  EXPECT_NO_FATAL_FAILURE(fit_log_log_slope(with_zero, ys));
}

TEST(Mathx, RivinBoundInversesConsistently) {
  // min_edges_for_triangles and max_triangles_for_edges are inverses.
  for (double t : {1.0, 10.0, 1000.0, 1e6}) {
    const double e = min_edges_for_triangles(t);
    EXPECT_NEAR(max_triangles_for_edges(e), t, t * 1e-9);
  }
  EXPECT_DOUBLE_EQ(min_edges_for_triangles(0.0), 0.0);
  EXPECT_DOUBLE_EQ(max_triangles_for_edges(0.0), 0.0);
}

TEST(Mathx, RivinBoundHoldsForCompleteGraph) {
  // K_n has C(n,2) edges and C(n,3) triangles; the bound must allow it:
  // C(n,3) <= (2 C(n,2))^{3/2} / 6.
  for (std::uint64_t n : {4ULL, 10ULL, 50ULL, 200ULL}) {
    const double edges = binomial_coeff(n, 2);
    const double triangles = binomial_coeff(n, 3);
    EXPECT_LE(triangles, max_triangles_for_edges(edges) * (1 + 1e-12)) << n;
    EXPECT_LE(min_edges_for_triangles(triangles), edges * (1 + 1e-12)) << n;
  }
}

TEST(Mathx, RivinBoundGrowsAsTwoThirdsPower) {
  std::vector<double> t{100, 1000, 10000, 100000};
  std::vector<double> e;
  for (double ti : t) e.push_back(min_edges_for_triangles(ti));
  EXPECT_NEAR(fit_log_log_slope(t, e), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace km
